// Zone-decomposed selection conformance (ISSUE 9): per-zone solves must
// reproduce standalone selection on the extracted zone bit-exactly (the
// decomposition is a partition, not an approximation, of the per-zone
// problems), the stitched perturbation must clear the full-model SPA
// threshold under tie coupling, and the whole pipeline must be
// bit-identical across thread counts 1/2/8 — exact == on doubles, as in
// the rest of the determinism suite.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "grid/compose.hpp"
#include "grid/measurement.hpp"
#include "io/case_registry.hpp"
#include "mtd/selection.hpp"
#include "mtd/zone_selection.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace mtdgrid {
namespace {

constexpr std::uint64_t kSeed = 7117;

mtd::ZoneSelectionOptions small_budget_options() {
  mtd::ZoneSelectionOptions opt;
  opt.selection.gamma_threshold = 0.1;
  opt.selection.extra_starts = 1;
  opt.selection.search.max_evaluations = 120;
  opt.max_rounds = 1;  // conformance wants pure round-0 results
  return opt;
}

// Standalone selection on one extracted zone, seeded exactly like
// round 0 of the decomposed run.
mtd::MtdSelectionResult standalone(const grid::ZoneSystem& zone,
                                   std::size_t z,
                                   const mtd::ZoneSelectionOptions& opt) {
  const opf::DispatchResult base = opf::solve_dc_opf(zone.system);
  EXPECT_TRUE(base.feasible);
  stats::Rng rng = stats::make_stream(kSeed, z);
  return mtd::select_mtd_perturbation(zone.system,
                                      grid::measurement_matrix(zone.system),
                                      base.cost, opt.selection, rng);
}

void expect_results_equal(const mtd::MtdSelectionResult& a,
                          const mtd::MtdSelectionResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.spa, b.spa);
  EXPECT_EQ(a.opf_cost, b.opf_cost);
  EXPECT_EQ(a.base_opf_cost, b.base_opf_cost);
  ASSERT_EQ(a.reactances.size(), b.reactances.size());
  for (std::size_t l = 0; l < a.reactances.size(); ++l)
    EXPECT_EQ(a.reactances[l], b.reactances[l]) << "branch " << l;
}

TEST(ZoneSelectionTest, RoundZeroMatchesStandaloneSelectionCase14x2) {
  const grid::PowerSystem sys = io::load_case("case14x2");
  const grid::ZonePartition p = grid::partition_into_copies(sys, 2);
  const mtd::ZoneSelectionOptions opt = small_budget_options();

  const mtd::ZoneSelectionResult r =
      mtd::select_mtd_zones(sys, p, opt, kSeed);
  ASSERT_EQ(r.zones.size(), 2u);
  EXPECT_EQ(r.boundary_rechecks, 1u);

  for (std::size_t z = 0; z < 2; ++z) {
    SCOPED_TRACE("zone " + std::to_string(z));
    const grid::ZoneSystem zone = grid::extract_zone(sys, p, z);
    expect_results_equal(r.zones[z].result, standalone(zone, z, opt));
    // The stitched vector carries zone z's reactances verbatim.
    for (std::size_t l = 0; l < zone.branch_map.size(); ++l)
      EXPECT_EQ(r.reactances[zone.branch_map[l]],
                r.zones[z].result.reactances[l]);
  }
}

TEST(ZoneSelectionTest, RoundZeroMatchesStandaloneSelectionCase57x2) {
  const grid::PowerSystem sys = io::load_case("case57x2");
  const grid::ZonePartition p = grid::partition_into_copies(sys, 2);
  mtd::ZoneSelectionOptions opt = small_budget_options();
  opt.selection.extra_starts = 0;  // corners + warm starts only
  opt.selection.search.max_evaluations = 40;

  const mtd::ZoneSelectionResult r =
      mtd::select_mtd_zones(sys, p, opt, kSeed);
  ASSERT_EQ(r.zones.size(), 2u);
  for (std::size_t z = 0; z < 2; ++z) {
    SCOPED_TRACE("zone " + std::to_string(z));
    expect_results_equal(r.zones[z].result,
                         standalone(grid::extract_zone(sys, p, z), z, opt));
  }
}

TEST(ZoneSelectionTest, DecoupledTiesReproducePerCopySpa) {
  // With the tie reactance cranked up the copies are effectively
  // decoupled (ties carry ~no susceptance), so the full-model check sees
  // what the zones achieved — the stitched SPA clears the threshold
  // whenever both zone solves did.
  grid::ComposeOptions copt;
  copt.copies = 2;
  copt.tie_reactance = 1e5;
  const grid::ComposeResult composed =
      grid::compose_cases(io::load_case("case14"), copt);
  const mtd::ZoneSelectionOptions opt = small_budget_options();

  const mtd::ZoneSelectionResult r =
      mtd::select_mtd_zones(composed.system, composed.zones(), opt, kSeed);
  ASSERT_TRUE(r.zones[0].result.feasible);
  ASSERT_TRUE(r.zones[1].result.feasible);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.full_spa,
            opt.selection.gamma_threshold - opt.selection.constraint_tol);
}

TEST(ZoneSelectionTest, CoupledStitchMeetsFullModelThreshold) {
  const grid::PowerSystem sys = io::load_case("case14x2");
  mtd::ZoneSelectionOptions opt = small_budget_options();
  opt.max_rounds = 2;  // allow one boundary-fallback round

  const mtd::ZoneSelectionResult r = mtd::select_mtd_zones(
      sys, grid::partition_into_copies(sys, 2), opt, kSeed);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.full_spa,
            opt.selection.gamma_threshold - opt.selection.constraint_tol);
  EXPECT_GT(r.opf_cost, 0.0);
  EXPECT_GT(r.base_opf_cost, 0.0);
  EXPECT_EQ(r.cost_increase,
            (r.opf_cost - r.base_opf_cost) / r.base_opf_cost);
}

TEST(ZoneSelectionTest, BitIdenticalAcrossThreadCounts) {
  const grid::PowerSystem sys = io::load_case("case14x2");
  const grid::ZonePartition p = grid::partition_into_copies(sys, 2);
  mtd::ZoneSelectionOptions opt = small_budget_options();
  opt.max_rounds = 2;

  const std::vector<std::size_t> thread_counts = {1, 2, 8};
  std::vector<mtd::ZoneSelectionResult> runs;
  std::vector<obs::WorkSnapshot> counters;
  for (std::size_t threads : thread_counts) {
    core::ThreadPool::set_global_num_threads(threads);
    obs::MetricsRegistry registry;
    obs::ScopedRegistry scope(&registry);
    runs.push_back(mtd::select_mtd_zones(sys, p, opt, kSeed));
    counters.push_back(registry.work_snapshot());
  }
  core::ThreadPool::set_global_num_threads(0);

  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(thread_counts[k]));
    EXPECT_EQ(runs[0].feasible, runs[k].feasible);
    EXPECT_EQ(runs[0].full_spa, runs[k].full_spa);
    EXPECT_EQ(runs[0].opf_cost, runs[k].opf_cost);
    EXPECT_EQ(runs[0].boundary_rechecks, runs[k].boundary_rechecks);
    ASSERT_EQ(runs[0].reactances.size(), runs[k].reactances.size());
    for (std::size_t l = 0; l < runs[0].reactances.size(); ++l)
      EXPECT_EQ(runs[0].reactances[l], runs[k].reactances[l])
          << "branch " << l;
    // The new work counters are deterministic: thread-count invariant.
    const auto zsel = static_cast<std::size_t>(obs::Work::kZonesSelected);
    const auto brc = static_cast<std::size_t>(obs::Work::kBoundaryRechecks);
    EXPECT_EQ(counters[0][zsel], counters[k][zsel]);
    EXPECT_EQ(counters[0][brc], counters[k][brc]);
  }
  // Round 0 solves both zones and runs at least one full-model check.
  const auto zsel = static_cast<std::size_t>(obs::Work::kZonesSelected);
  const auto brc = static_cast<std::size_t>(obs::Work::kBoundaryRechecks);
  EXPECT_GE(counters[0][zsel], 2u);
  EXPECT_EQ(counters[0][brc], runs[0].boundary_rechecks);
}

TEST(ZoneSelectionTest, WorkCountersMatchResultMetadata) {
  const grid::PowerSystem sys = io::load_case("case14x2");
  const grid::ZonePartition p = grid::partition_into_copies(sys, 2);
  const mtd::ZoneSelectionOptions opt = small_budget_options();

  obs::MetricsRegistry registry;
  obs::ScopedRegistry scope(&registry);
  const mtd::ZoneSelectionResult r =
      mtd::select_mtd_zones(sys, p, opt, kSeed);
  EXPECT_EQ(registry.value(obs::Work::kZonesSelected), 2u);
  EXPECT_EQ(registry.value(obs::Work::kBoundaryRechecks), 1u);
  EXPECT_EQ(r.boundary_rechecks, 1u);
}

TEST(ZoneSelectionTest, InvalidInputsThrow) {
  const grid::PowerSystem sys = io::load_case("case14x2");
  const grid::ZonePartition p = grid::partition_into_copies(sys, 2);
  mtd::ZoneSelectionOptions opt = small_budget_options();

  opt.max_rounds = 0;
  EXPECT_THROW(mtd::select_mtd_zones(sys, p, opt, kSeed),
               std::invalid_argument);

  const grid::ZonePartition empty;
  EXPECT_THROW(
      mtd::select_mtd_zones(sys, empty, small_budget_options(), kSeed),
      std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid
