#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/thread_pool.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "obs/prometheus.hpp"
#include "obs/scope.hpp"

namespace mtdgrid::obs {
namespace {

TEST(MetricsTest, WorkInfoNamesAreUniqueNonEmptySnakeCase) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kWorkCount; ++i) {
    const WorkInfo& info = work_info(static_cast<Work>(i));
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.help, nullptr);
    const std::string name = info.name;
    EXPECT_FALSE(name.empty());
    for (const char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(MetricsTest, OnlyPoolCountersAreStructural) {
  for (std::size_t i = 0; i < kWorkCount; ++i) {
    const Work w = static_cast<Work>(i);
    const bool structural = w == Work::kPoolRegions || w == Work::kPoolTasks;
    EXPECT_EQ(work_info(w).deterministic, !structural) << work_info(w).name;
  }
}

TEST(MetricsTest, FixedCountersAddValueResetSnapshot) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.value(Work::kCgIterations), 0u);
  reg.add(Work::kCgIterations);
  reg.add(Work::kCgIterations, 41);
  EXPECT_EQ(reg.value(Work::kCgIterations), 42u);
  const WorkSnapshot snap = reg.work_snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(Work::kCgIterations)], 42u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Work::kMcTrials)], 0u);
  reg.reset_work();
  EXPECT_EQ(reg.value(Work::kCgIterations), 0u);
}

TEST(MetricsTest, ScopedRegistryRedirectsAdds) {
  MetricsRegistry reg;
  const std::uint64_t global_before =
      MetricsRegistry::global().value(Work::kMcTrials);
  {
    ScopedRegistry scope(&reg);
    add(Work::kMcTrials, 7);
  }
  add(Work::kMcTrials, 3);  // outside the scope: goes to the global
  EXPECT_EQ(reg.value(Work::kMcTrials), 7u);
  EXPECT_EQ(MetricsRegistry::global().value(Work::kMcTrials),
            global_before + 3);
}

TEST(MetricsTest, ScopedRegistryRestoresOnNesting) {
  MetricsRegistry outer, inner;
  ScopedRegistry outer_scope(&outer);
  {
    ScopedRegistry inner_scope(&inner);
    add(Work::kEngineHours);
  }
  add(Work::kEngineHours);
  EXPECT_EQ(inner.value(Work::kEngineHours), 1u);
  EXPECT_EQ(outer.value(Work::kEngineHours), 1u);
}

TEST(MetricsTest, DynamicSeriesRegisterOnceAndSnapshot) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("reqs", "requests");
  Counter& c2 = reg.counter("reqs", "ignored duplicate help");
  EXPECT_EQ(&c1, &c2);
  c1.add(5);
  Gauge& g = reg.gauge("hour", "current hour");
  g.set(12.0);
  g.add(1.0);
  Histogram& h = reg.histogram("lat", "latency", {1.0, 10.0});
  h.observe(0.5);
  h.observe(10.0);   // exactly on a bound: that bound's bucket
  h.observe(100.0);  // overflow
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "reqs");
  EXPECT_EQ(snap.counters[0].help, "requests");
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 13.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& hs = snap.histograms[0];
  ASSERT_EQ(hs.buckets.size(), 3u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 110.5);
}

TEST(MetricsTest, HistogramBoundaryIsInclusive) {
  Histogram h("h", "", {100.0, 1000.0});
  h.observe(100.0);
  h.observe(100.0000001);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 1u);  // exactly on the bound
  EXPECT_EQ(buckets[1], 1u);  // just past it
  EXPECT_EQ(buckets[2], 0u);
}

TEST(MetricsTest, PrometheusExpositionGrammarAndCumulativeBuckets) {
  PrometheusBuilder b;
  b.counter("t_total", "a counter", 3);
  b.gauge("g", "a gauge", 1.5);
  b.histogram("h", "a histogram", {1.0, 2.0}, {4, 5, 6}, 15, 7.5);
  const std::string& text = b.text();
  EXPECT_NE(text.find("# HELP t_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("t_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\n"), std::string::npos);
  EXPECT_NE(text.find("g 1.5\n"), std::string::npos);
  // Cumulative le buckets: 4, 4+5, then +Inf equal to the total count.
  EXPECT_NE(text.find("h_bucket{le=\"1\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"2\"} 9\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 15\n"), std::string::npos);
  EXPECT_NE(text.find("h_sum 7.5\n"), std::string::npos);
  EXPECT_NE(text.find("h_count 15\n"), std::string::npos);
}

TEST(MetricsTest, PrometheusDoubleFormatting) {
  EXPECT_EQ(format_prometheus_double(100.0), "100");
  EXPECT_EQ(format_prometheus_double(0.0), "0");
  EXPECT_EQ(format_prometheus_double(-3.0), "-3");
  EXPECT_EQ(format_prometheus_double(1.5), "1.5");
}

TEST(MetricsTest, RenderWorkCountersEmitsEveryCounter) {
  MetricsRegistry reg;
  reg.add(Work::kSimplexSolves, 2);
  PrometheusBuilder b;
  render_work_counters(b, reg.work_snapshot());
  const std::string& text = b.text();
  for (std::size_t i = 0; i < kWorkCount; ++i) {
    const std::string series = std::string("mtdgrid_work_") +
                               work_info(static_cast<Work>(i)).name +
                               "_total";
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
  EXPECT_NE(text.find("mtdgrid_work_simplex_solves_total 2\n"),
            std::string::npos);
}

TEST(MetricsTest, ConcurrentAddsFromPoolWorkersSumExactly) {
  MetricsRegistry reg;
  ScopedRegistry scope(&reg);
  constexpr std::size_t kTasks = 1000;
  core::parallel_for(kTasks, [](std::size_t) { add(Work::kCgIterations); });
  EXPECT_EQ(reg.value(Work::kCgIterations), kTasks);
}

// The tentpole invariance claim at the counter level: deterministic work
// counters are pure functions of (seed, inputs) — the thread count only
// moves where the work runs. Monte-Carlo detection exercises the full
// propagation chain (request thread -> ThreadPool::run -> workers).
TEST(MetricsTest, DeterministicCountersAreThreadCountInvariant) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const estimation::StateEstimator est(h, 1.0);
  const estimation::BadDataDetector bdd(est, 0.01);
  linalg::Vector a(h.rows());
  a[0] = 3.0;
  const linalg::Vector z_base(h.rows());

  const auto run_with_threads = [&](std::size_t threads) {
    core::ThreadPool::set_global_num_threads(threads);
    MetricsRegistry reg;
    ScopedRegistry scope(&reg);
    estimation::monte_carlo_detection_probability_seeded(est, bdd, z_base, a,
                                                         500, 42);
    return reg.work_snapshot();
  };

  const WorkSnapshot base = run_with_threads(1);
  EXPECT_EQ(base[static_cast<std::size_t>(Work::kMcTrials)], 500u);
  for (const std::size_t threads : {2u, 8u}) {
    const WorkSnapshot snap = run_with_threads(threads);
    for (std::size_t i = 0; i < kWorkCount; ++i) {
      if (!work_info(static_cast<Work>(i)).deterministic) continue;
      EXPECT_EQ(snap[i], base[i])
          << work_info(static_cast<Work>(i)).name << " at " << threads
          << " threads";
    }
  }
  core::ThreadPool::set_global_num_threads(0);
}

}  // namespace
}  // namespace mtdgrid::obs
