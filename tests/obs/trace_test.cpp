#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "obs/scope.hpp"
#include "serve/json.hpp"

namespace mtdgrid::obs {
namespace {

TEST(TraceTest, SpanRecordsIntoActiveCapture) {
  SpanCapture capture;
  {
    ScopedCapture scope(&capture);
    Span outer("outer", "test");
    { Span inner("inner", "test"); }
  }
  { Span after("after", "test"); }  // no capture active: not recorded
  const std::vector<TraceEvent> events = capture.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close (and record) inner-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GE(events[0].dur_us, 0.0);
  // The outer span encloses the inner one on the timeline.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST(TraceTest, DisabledGlobalTracerRecordsNothing) {
  Tracer::global().set_enabled(false);
  Tracer::global().drain();  // discard anything left by earlier tests
  { Span span("ignored", "test"); }
  EXPECT_TRUE(Tracer::global().drain().empty());
}

TEST(TraceTest, GlobalTracerCollectsAcrossPoolThreads) {
  Tracer::global().drain();
  Tracer::global().set_enabled(true);
  constexpr std::size_t kTasks = 64;
  core::parallel_for(kTasks, [](std::size_t) {
    Span span("task", "test");
  });
  Tracer::global().set_enabled(false);
  const std::vector<TraceEvent> events = Tracer::global().drain();
  ASSERT_EQ(events.size(), kTasks);
  for (const TraceEvent& e : events) EXPECT_STREQ(e.name, "task");
  // drain() sorts by start time.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  // A second drain finds the buffers empty.
  EXPECT_TRUE(Tracer::global().drain().empty());
}

TEST(TraceTest, CaptureAndGlobalTracerBothReceiveSpans) {
  Tracer::global().drain();
  Tracer::global().set_enabled(true);
  SpanCapture capture;
  {
    ScopedCapture scope(&capture);
    Span span("both", "test");
  }
  Tracer::global().set_enabled(false);
  EXPECT_EQ(capture.events().size(), 1u);
  EXPECT_EQ(Tracer::global().drain().size(), 1u);
}

TEST(TraceTest, CurrentTidIsStablePerThread) {
  const std::uint32_t here = Tracer::current_tid();
  EXPECT_EQ(Tracer::current_tid(), here);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  std::vector<TraceEvent> events;
  events.push_back({"alpha", "cat_a", 0, 1.5, 2.25});
  events.push_back({"beta", "cat_b", 3, 10.0, 0.5});
  std::ostringstream out;
  write_chrome_trace(out, events);
  const serve::Json doc = serve::Json::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  const serve::Json* list = doc.find("traceEvents");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->as_array().size(), 2u);
  const serve::Json& first = list->as_array()[0];
  EXPECT_EQ(first.find("name")->as_string(), "alpha");
  EXPECT_EQ(first.find("cat")->as_string(), "cat_a");
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(first.find("ts")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(first.find("dur")->as_number(), 2.25);
  EXPECT_EQ(first.find("pid")->as_number(), 1);
  const serve::Json& second = list->as_array()[1];
  EXPECT_EQ(second.find("tid")->as_number(), 3);
}

TEST(TraceTest, ChromeTraceEmptyEventListStillParses) {
  std::ostringstream out;
  write_chrome_trace(out, {});
  const serve::Json doc = serve::Json::parse(out.str());
  ASSERT_TRUE(doc.find("traceEvents") != nullptr);
  EXPECT_TRUE(doc.find("traceEvents")->as_array().empty());
}

}  // namespace
}  // namespace mtdgrid::obs
