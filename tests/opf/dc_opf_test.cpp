#include "opf/dc_opf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "grid/cases.hpp"
#include "grid/power_flow.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::opf {
namespace {

using grid::Branch;
using grid::Bus;
using grid::Generator;
using grid::PowerSystem;

PowerSystem uncongested_two_gen() {
  // Two generators, generous line limits: pure merit-order dispatch.
  std::vector<Bus> buses = {{0.0}, {80.0}, {40.0}};
  std::vector<Branch> branches(3);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  branches[1] = {.from = 1, .to = 2, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  branches[2] = {.from = 0, .to = 2, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0},
      {.bus = 2, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 50.0}};
  return PowerSystem("twogen", buses, branches, gens);
}

TEST(DcOpfTest, MeritOrderWhenUncongested) {
  const PowerSystem sys = uncongested_two_gen();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  // Cheap generator covers everything it can.
  EXPECT_NEAR(r.generation_mw[0], 100.0, 1e-6);
  EXPECT_NEAR(r.generation_mw[1], 20.0, 1e-6);
  EXPECT_NEAR(r.cost, 100.0 * 5.0 + 20.0 * 50.0, 1e-6);
}

TEST(DcOpfTest, GenerationBalancesLoad) {
  for (const PowerSystem& sys :
       {grid::make_case4(), grid::make_case_ieee14(),
        grid::make_case_ieee30(), grid::make_case_wscc9()}) {
    const DispatchResult r = solve_dc_opf(sys);
    ASSERT_TRUE(r.feasible) << sys.name();
    EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-6)
        << sys.name();
  }
}

TEST(DcOpfTest, FlowLimitsRespected) {
  for (const PowerSystem& sys :
       {grid::make_case4(), grid::make_case_ieee14(),
        grid::make_case_ieee30()}) {
    const DispatchResult r = solve_dc_opf(sys);
    ASSERT_TRUE(r.feasible) << sys.name();
    for (std::size_t l = 0; l < sys.num_branches(); ++l) {
      EXPECT_LE(std::abs(r.flows_mw[l]),
                sys.branch(l).flow_limit_mw + 1e-6)
          << sys.name() << " line " << l;
    }
  }
}

TEST(DcOpfTest, GeneratorLimitsRespected) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  for (std::size_t g = 0; g < sys.num_generators(); ++g) {
    EXPECT_GE(r.generation_mw[g], sys.generator(g).min_mw - 1e-9);
    EXPECT_LE(r.generation_mw[g], sys.generator(g).max_mw + 1e-9);
  }
}

TEST(DcOpfTest, CongestionForcesRedispatch) {
  // Two buses joined by parallel lines; tightening them strands the cheap
  // generator and forces the expensive local unit to run.
  const auto build = [](double line_limit) {
    std::vector<Bus> buses = {{0.0}, {50.0}};
    std::vector<Branch> branches(2);
    branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                   .flow_limit_mw = line_limit};
    branches[1] = {.from = 0, .to = 1, .reactance = 0.1,
                   .flow_limit_mw = line_limit};
    std::vector<Generator> gens = {
        {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0},
        {.bus = 1, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 50.0}};
    return PowerSystem("parallel", buses, branches, gens);
  };
  const DispatchResult wide = solve_dc_opf(build(100.0));
  ASSERT_TRUE(wide.feasible);
  EXPECT_NEAR(wide.cost, 50.0 * 5.0, 1e-6);  // cheap unit serves everything

  const DispatchResult tight = solve_dc_opf(build(15.0));
  ASSERT_TRUE(tight.feasible);
  // Import capped at 30 MW, local unit covers the remaining 20 MW.
  EXPECT_NEAR(tight.generation_mw[0], 30.0, 1e-6);
  EXPECT_NEAR(tight.generation_mw[1], 20.0, 1e-6);
  EXPECT_GT(tight.cost, wide.cost + 1.0);
}

TEST(DcOpfTest, InfeasibleWhenLoadExceedsCapacity) {
  std::vector<Bus> buses = {{0.0}, {300.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0}};
  const PowerSystem sys("overload", buses, branches, gens);
  EXPECT_FALSE(solve_dc_opf(sys).feasible);
}

TEST(DcOpfTest, InfeasibleWhenLineTooSmall) {
  std::vector<Bus> buses = {{0.0}, {50.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 20.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0}};
  const PowerSystem sys("thinline", buses, branches, gens);
  EXPECT_FALSE(solve_dc_opf(sys).feasible);
}

TEST(DcOpfTest, FlowsConsistentWithAngles) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  const linalg::Vector recomputed =
      grid::branch_flows(sys, sys.reactances(), r.theta_reduced);
  EXPECT_NEAR(linalg::max_abs_diff(recomputed, r.flows_mw), 0.0, 1e-9);
}

TEST(DcOpfTest, DispatchCostHelperMatchesSolution) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(dispatch_cost(sys, r.generation_mw), r.cost, 1e-8);
}

TEST(DcOpfTest, ReactanceChangeAffectsCostUnderCongestion) {
  // On the paper's 4-bus system a +20% perturbation on line 1 (Table III
  // Delta-x1) forces a re-dispatch with a strictly higher cost.
  const PowerSystem sys = grid::make_case4();
  const double base_cost = solve_dc_opf(sys).cost;
  linalg::Vector x = sys.reactances();
  x[0] *= 1.2;
  const DispatchResult r = solve_dc_opf(sys, x);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.cost, base_cost);
}

// Property: OPF cost is monotone non-decreasing in total load scaling.
class DcOpfLoadMonotoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(DcOpfLoadMonotoneProperty, CostIncreasesWithLoad) {
  PowerSystem sys = grid::make_case_ieee14();
  const double scale = GetParam();
  const double cost_base = solve_dc_opf(sys).cost;
  sys.scale_loads(scale);
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  if (scale >= 1.0) {
    EXPECT_GE(r.cost, cost_base - 1e-6);
  } else {
    EXPECT_LE(r.cost, cost_base + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, DcOpfLoadMonotoneProperty,
                         ::testing::Values(0.55, 0.7, 0.85, 1.0, 1.1, 1.2));

// --- DispatchEvaluator: amortized OPF sweeps ----------------------------

class DispatchEvaluatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(DispatchEvaluatorProperty, MatchesSimplexAcrossPerturbations) {
  const PowerSystem sys =
      GetParam() % 2 == 0 ? grid::make_case14() : grid::make_case57();
  const DispatchEvaluator evaluator(sys);
  stats::Rng rng(500 + GetParam());
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  for (int t = 0; t < 5; ++t) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      x[l] = rng.uniform(lo[l], hi[l]);
    const DispatchResult reference = solve_dc_opf(sys, x);
    const DispatchResult fast = evaluator.evaluate(x);
    ASSERT_EQ(fast.feasible, reference.feasible);
    if (reference.feasible) {
      EXPECT_NEAR(fast.cost, reference.cost,
                  1e-6 * std::max(1.0, reference.cost));
      // The returned dispatch must balance and respect the flow limits.
      double total = 0.0;
      for (std::size_t g = 0; g < fast.generation_mw.size(); ++g)
        total += fast.generation_mw[g];
      EXPECT_NEAR(total, sys.total_load_mw(), 1e-6);
      for (std::size_t l = 0; l < sys.num_branches(); ++l)
        EXPECT_LE(std::abs(fast.flows_mw[l]),
                  sys.branch(l).flow_limit_mw + 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchEvaluatorProperty,
                         ::testing::Range(0, 6));

TEST(DispatchEvaluatorTest, FallsBackToSimplexUnderCongestion) {
  // Shrink one loaded line's limit so the merit-order dispatch violates it:
  // the evaluator must fall back to the LP and still match solve_dc_opf.
  PowerSystem sys = grid::make_case14();
  const DispatchResult base = solve_dc_opf(sys);
  ASSERT_TRUE(base.feasible);
  std::size_t busiest = 0;
  for (std::size_t l = 1; l < sys.num_branches(); ++l)
    if (std::abs(base.flows_mw[l]) > std::abs(base.flows_mw[busiest]))
      busiest = l;
  sys.branch(busiest).flow_limit_mw = 0.9 * std::abs(base.flows_mw[busiest]);

  const DispatchEvaluator evaluator(sys);
  const DispatchResult reference = solve_dc_opf(sys, sys.reactances());
  const DispatchResult fast = evaluator.evaluate(sys.reactances());
  ASSERT_EQ(fast.feasible, reference.feasible);
  if (reference.feasible)
    EXPECT_NEAR(fast.cost, reference.cost,
                1e-6 * std::max(1.0, reference.cost));
  EXPECT_GE(evaluator.lp_fallbacks(), 1u);
}

TEST(DispatchEvaluatorTest, FastPathIsTakenWhenUncongested) {
  const PowerSystem sys = uncongested_two_gen();
  const DispatchEvaluator evaluator(sys);
  const DispatchResult fast = evaluator.evaluate(sys.reactances());
  const DispatchResult reference = solve_dc_opf(sys);
  ASSERT_TRUE(fast.feasible);
  EXPECT_NEAR(fast.cost, reference.cost, 1e-9 * (1.0 + reference.cost));
  EXPECT_EQ(evaluator.fast_path_hits(), 1u);
  EXPECT_EQ(evaluator.lp_fallbacks(), 0u);
}

}  // namespace
}  // namespace mtdgrid::opf
