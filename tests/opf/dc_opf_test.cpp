#include "opf/dc_opf.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/power_flow.hpp"

namespace mtdgrid::opf {
namespace {

using grid::Branch;
using grid::Bus;
using grid::Generator;
using grid::PowerSystem;

PowerSystem uncongested_two_gen() {
  // Two generators, generous line limits: pure merit-order dispatch.
  std::vector<Bus> buses = {{0.0}, {80.0}, {40.0}};
  std::vector<Branch> branches(3);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  branches[1] = {.from = 1, .to = 2, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  branches[2] = {.from = 0, .to = 2, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0},
      {.bus = 2, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 50.0}};
  return PowerSystem("twogen", buses, branches, gens);
}

TEST(DcOpfTest, MeritOrderWhenUncongested) {
  const PowerSystem sys = uncongested_two_gen();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  // Cheap generator covers everything it can.
  EXPECT_NEAR(r.generation_mw[0], 100.0, 1e-6);
  EXPECT_NEAR(r.generation_mw[1], 20.0, 1e-6);
  EXPECT_NEAR(r.cost, 100.0 * 5.0 + 20.0 * 50.0, 1e-6);
}

TEST(DcOpfTest, GenerationBalancesLoad) {
  for (const PowerSystem& sys :
       {grid::make_case4(), grid::make_case_ieee14(),
        grid::make_case_ieee30(), grid::make_case_wscc9()}) {
    const DispatchResult r = solve_dc_opf(sys);
    ASSERT_TRUE(r.feasible) << sys.name();
    EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-6)
        << sys.name();
  }
}

TEST(DcOpfTest, FlowLimitsRespected) {
  for (const PowerSystem& sys :
       {grid::make_case4(), grid::make_case_ieee14(),
        grid::make_case_ieee30()}) {
    const DispatchResult r = solve_dc_opf(sys);
    ASSERT_TRUE(r.feasible) << sys.name();
    for (std::size_t l = 0; l < sys.num_branches(); ++l) {
      EXPECT_LE(std::abs(r.flows_mw[l]),
                sys.branch(l).flow_limit_mw + 1e-6)
          << sys.name() << " line " << l;
    }
  }
}

TEST(DcOpfTest, GeneratorLimitsRespected) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  for (std::size_t g = 0; g < sys.num_generators(); ++g) {
    EXPECT_GE(r.generation_mw[g], sys.generator(g).min_mw - 1e-9);
    EXPECT_LE(r.generation_mw[g], sys.generator(g).max_mw + 1e-9);
  }
}

TEST(DcOpfTest, CongestionForcesRedispatch) {
  // Two buses joined by parallel lines; tightening them strands the cheap
  // generator and forces the expensive local unit to run.
  const auto build = [](double line_limit) {
    std::vector<Bus> buses = {{0.0}, {50.0}};
    std::vector<Branch> branches(2);
    branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                   .flow_limit_mw = line_limit};
    branches[1] = {.from = 0, .to = 1, .reactance = 0.1,
                   .flow_limit_mw = line_limit};
    std::vector<Generator> gens = {
        {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0},
        {.bus = 1, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 50.0}};
    return PowerSystem("parallel", buses, branches, gens);
  };
  const DispatchResult wide = solve_dc_opf(build(100.0));
  ASSERT_TRUE(wide.feasible);
  EXPECT_NEAR(wide.cost, 50.0 * 5.0, 1e-6);  // cheap unit serves everything

  const DispatchResult tight = solve_dc_opf(build(15.0));
  ASSERT_TRUE(tight.feasible);
  // Import capped at 30 MW, local unit covers the remaining 20 MW.
  EXPECT_NEAR(tight.generation_mw[0], 30.0, 1e-6);
  EXPECT_NEAR(tight.generation_mw[1], 20.0, 1e-6);
  EXPECT_GT(tight.cost, wide.cost + 1.0);
}

TEST(DcOpfTest, InfeasibleWhenLoadExceedsCapacity) {
  std::vector<Bus> buses = {{0.0}, {300.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 500.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0}};
  const PowerSystem sys("overload", buses, branches, gens);
  EXPECT_FALSE(solve_dc_opf(sys).feasible);
}

TEST(DcOpfTest, InfeasibleWhenLineTooSmall) {
  std::vector<Bus> buses = {{0.0}, {50.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 20.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 5.0}};
  const PowerSystem sys("thinline", buses, branches, gens);
  EXPECT_FALSE(solve_dc_opf(sys).feasible);
}

TEST(DcOpfTest, FlowsConsistentWithAngles) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  const linalg::Vector recomputed =
      grid::branch_flows(sys, sys.reactances(), r.theta_reduced);
  EXPECT_NEAR(linalg::max_abs_diff(recomputed, r.flows_mw), 0.0, 1e-9);
}

TEST(DcOpfTest, DispatchCostHelperMatchesSolution) {
  const PowerSystem sys = grid::make_case_ieee14();
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(dispatch_cost(sys, r.generation_mw), r.cost, 1e-8);
}

TEST(DcOpfTest, ReactanceChangeAffectsCostUnderCongestion) {
  // On the paper's 4-bus system a +20% perturbation on line 1 (Table III
  // Delta-x1) forces a re-dispatch with a strictly higher cost.
  const PowerSystem sys = grid::make_case4();
  const double base_cost = solve_dc_opf(sys).cost;
  linalg::Vector x = sys.reactances();
  x[0] *= 1.2;
  const DispatchResult r = solve_dc_opf(sys, x);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.cost, base_cost);
}

// Property: OPF cost is monotone non-decreasing in total load scaling.
class DcOpfLoadMonotoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(DcOpfLoadMonotoneProperty, CostIncreasesWithLoad) {
  PowerSystem sys = grid::make_case_ieee14();
  const double scale = GetParam();
  const double cost_base = solve_dc_opf(sys).cost;
  sys.scale_loads(scale);
  const DispatchResult r = solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  if (scale >= 1.0) {
    EXPECT_GE(r.cost, cost_base - 1e-6);
  } else {
    EXPECT_LE(r.cost, cost_base + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, DcOpfLoadMonotoneProperty,
                         ::testing::Values(0.55, 0.7, 0.85, 1.0, 1.1, 1.2));

}  // namespace
}  // namespace mtdgrid::opf
