#include "opf/direct_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mtdgrid::opf {
namespace {

using linalg::Vector;

TEST(DirectSearchTest, MinimizesConvexQuadratic) {
  const auto f = [](const Vector& x) {
    return (x[0] - 1.5) * (x[0] - 1.5) + 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
  };
  const auto r = nelder_mead_box(f, Vector{-5.0, -5.0}, Vector{5.0, 5.0},
                                 Vector{4.0, 4.0});
  EXPECT_NEAR(r.x[0], 1.5, 1e-4);
  EXPECT_NEAR(r.x[1], -0.5, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-7);
}

TEST(DirectSearchTest, RespectsBoxWhenOptimumOutside) {
  // Unconstrained optimum at x = 10 but box caps at 2.
  const auto f = [](const Vector& x) { return (x[0] - 10.0) * (x[0] - 10.0); };
  const auto r =
      nelder_mead_box(f, Vector{0.0}, Vector{2.0}, Vector{1.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
}

TEST(DirectSearchTest, StartOutsideBoxIsClamped) {
  const auto f = [](const Vector& x) { return x[0] * x[0]; };
  const auto r =
      nelder_mead_box(f, Vector{-1.0}, Vector{1.0}, Vector{50.0});
  EXPECT_NEAR(r.x[0], 0.0, 1e-5);
}

TEST(DirectSearchTest, HonorsEvaluationBudget) {
  int evals = 0;
  const auto f = [&](const Vector& x) {
    ++evals;
    return x.dot(x);
  };
  DirectSearchOptions opts;
  opts.max_evaluations = 37;
  const auto r = nelder_mead_box(f, Vector(4, -1.0), Vector(4, 1.0),
                                 Vector(4, 0.9), opts);
  EXPECT_LE(evals, 45);  // small overshoot from the final shrink loop
  EXPECT_EQ(r.evaluations, evals);
}

TEST(DirectSearchTest, RosenbrockValleyProgress) {
  // Banana function: hard for direct search, but it must reach the valley.
  const auto f = [](const Vector& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  DirectSearchOptions opts;
  opts.max_evaluations = 5000;
  const auto r = nelder_mead_box(f, Vector{-2.0, -2.0}, Vector{2.0, 2.0},
                                 Vector{-1.5, 1.5}, opts);
  EXPECT_LT(r.value, 1e-3);
}

TEST(DirectSearchTest, MultiStartEscapesLocalMinimum) {
  // Double well: local minimum at x ~ -1 (value 1), global at x ~ +2
  // (value 0). A single NM run from the left basin stalls at the local one.
  const auto f = [](const Vector& x) {
    const double left = (x[0] + 1.0) * (x[0] + 1.0) + 1.0;
    const double right = (x[0] - 2.0) * (x[0] - 2.0);
    return std::min(left, right);
  };
  const Vector lo{-4.0}, hi{4.0}, start{-1.2};

  DirectSearchOptions opts;
  opts.initial_step = 0.05;  // keep the single run inside the left basin
  const auto single = nelder_mead_box(f, lo, hi, start, opts);
  EXPECT_NEAR(single.value, 1.0, 1e-3);

  stats::Rng rng(5);
  const auto multi = multi_start_minimize(f, lo, hi, start, 8, rng, opts);
  EXPECT_NEAR(multi.value, 0.0, 1e-3);
  EXPECT_NEAR(multi.x[0], 2.0, 1e-2);
}

TEST(DirectSearchTest, MultiStartAccumulatesEvaluations) {
  const auto f = [](const Vector& x) { return x.dot(x); };
  stats::Rng rng(1);
  DirectSearchOptions opts;
  opts.max_evaluations = 100;
  const auto r = multi_start_minimize(f, Vector(2, -1.0), Vector(2, 1.0),
                                      Vector(2, 0.5), 3, rng, opts);
  EXPECT_GT(r.evaluations, 100);  // more than one start ran
}

TEST(DirectSearchTest, DegenerateBoxSingleFeasiblePoint) {
  // lo == hi pins the variable; search must simply return it.
  const auto f = [](const Vector& x) { return x[0] * x[0] + x[1]; };
  const auto r = nelder_mead_box(f, Vector{2.0, 0.0}, Vector{2.0, 1.0},
                                 Vector{2.0, 0.7});
  EXPECT_DOUBLE_EQ(r.x[0], 2.0);
  EXPECT_NEAR(r.x[1], 0.0, 1e-5);
}

// --- explicit-start portfolio overload ----------------------------------

TEST(MultiStartTest, ExplicitStartsIncludeIncumbent) {
  // Objective with a narrow global minimum at the "incumbent": random
  // starts with zero extra budget would miss it, the warm start finds it.
  const linalg::Vector lo(2, -10.0), hi(2, 10.0);
  const linalg::Vector incumbent{7.3, -4.2};
  const auto objective = [&](const linalg::Vector& x) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      const double d = x[i] - incumbent[i];
      d2 += d * d;
    }
    return -std::exp(-25.0 * d2);  // deep, narrow well at the incumbent
  };
  stats::Rng rng(5);
  DirectSearchOptions options;
  options.max_evaluations = 400;
  const DirectSearchResult r = multi_start_minimize(
      objective, lo, hi, std::vector<linalg::Vector>{incumbent}, 0, rng,
      options);
  EXPECT_NEAR(r.value, -1.0, 1e-6);
  EXPECT_NEAR(r.x[0], incumbent[0], 1e-3);
  EXPECT_NEAR(r.x[1], incumbent[1], 1e-3);
}

TEST(MultiStartTest, EmptyPortfolioStillSearches) {
  const linalg::Vector lo(1, -1.0), hi(1, 1.0);
  const auto objective = [](const linalg::Vector& x) { return x[0] * x[0]; };
  stats::Rng rng(6);
  const DirectSearchResult r = multi_start_minimize(
      objective, lo, hi, std::vector<linalg::Vector>{}, 0, rng, {});
  EXPECT_NEAR(r.value, 0.0, 1e-6);
  EXPECT_GT(r.evaluations, 0);
}

TEST(MultiStartTest, SingleStartOverloadAgreesWithPortfolioForm) {
  const linalg::Vector lo(2, -2.0), hi(2, 2.0);
  const auto objective = [](const linalg::Vector& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 0.5) * (x[1] + 0.5);
  };
  const linalg::Vector x0(2, 0.0);
  stats::Rng rng_a(9), rng_b(9);
  const DirectSearchResult a =
      multi_start_minimize(objective, lo, hi, x0, 2, rng_a, {});
  const DirectSearchResult b = multi_start_minimize(
      objective, lo, hi, std::vector<linalg::Vector>{x0}, 2, rng_b, {});
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

}  // namespace
}  // namespace mtdgrid::opf
