#include "opf/reactance_opf.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"

namespace mtdgrid::opf {
namespace {

TEST(ReactanceOpfTest, NeverWorseThanNominalDispatch) {
  // Optimizing the D-FACTS reactances can only relieve congestion.
  for (auto make : {grid::make_case4, grid::make_case_ieee14,
                    grid::make_case_wscc9}) {
    const grid::PowerSystem sys = make();
    stats::Rng rng(3);
    const DispatchResult nominal = solve_dc_opf(sys);
    const ReactanceOpfResult r = solve_reactance_opf(sys, rng);
    ASSERT_TRUE(r.feasible) << sys.name();
    EXPECT_LE(r.dispatch.cost, nominal.cost + 1e-6) << sys.name();
  }
}

TEST(ReactanceOpfTest, RelievesCongestionOnIeee14) {
  // The IEEE 14-bus case at full load is congested at nominal reactances;
  // the D-FACTS optimum is strictly cheaper.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(4);
  const double nominal_cost = solve_dc_opf(sys).cost;
  const ReactanceOpfResult r = solve_reactance_opf(sys, rng);
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.dispatch.cost, nominal_cost - 1.0);
}

TEST(ReactanceOpfTest, ReactancesStayWithinDfactsLimits) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(5);
  const ReactanceOpfResult r = solve_reactance_opf(sys, rng);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(sys.reactances_within_limits(r.reactances));
}

TEST(ReactanceOpfTest, NonDfactsBranchesUntouched) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(6);
  const ReactanceOpfResult r = solve_reactance_opf(sys, rng);
  const linalg::Vector nominal = sys.reactances();
  const auto dfacts = sys.dfacts_branches();
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const bool is_dfacts =
        std::find(dfacts.begin(), dfacts.end(), l) != dfacts.end();
    if (!is_dfacts) EXPECT_DOUBLE_EQ(r.reactances[l], nominal[l]);
  }
}

TEST(ReactanceOpfTest, ExpandDfactsReactances) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const auto dfacts = sys.dfacts_branches();
  linalg::Vector dx(dfacts.size(), 0.123);
  const linalg::Vector full = expand_dfacts_reactances(sys, dx);
  ASSERT_EQ(full.size(), sys.num_branches());
  for (std::size_t k = 0; k < dfacts.size(); ++k)
    EXPECT_DOUBLE_EQ(full[dfacts[k]], 0.123);
  EXPECT_DOUBLE_EQ(full[1], sys.branch(1).reactance);  // non-D-FACTS
}

TEST(ReactanceOpfTest, DegeneratesWithoutDfacts) {
  // A system without D-FACTS devices: result equals the plain dispatch LP.
  std::vector<grid::Bus> buses = {{0.0}, {50.0}};
  std::vector<grid::Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 100.0};
  std::vector<grid::Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 7.0}};
  const grid::PowerSystem sys("plain", buses, branches, gens);
  stats::Rng rng(7);
  const ReactanceOpfResult r = solve_reactance_opf(sys, rng);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.dispatch.cost, 350.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.reactances[0], 0.1);
}

}  // namespace
}  // namespace mtdgrid::opf
