#include "opf/simplex.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace mtdgrid::opf {
namespace {

using linalg::Matrix;
using linalg::Vector;

LinearProgram boxed_lp(std::size_t n) {
  LinearProgram lp;
  lp.objective = Vector(n);
  lp.lower_bounds = Vector(n);
  lp.upper_bounds = Vector(n);
  return lp;
}

TEST(SimplexTest, PureBoxProblem) {
  // min x0 - 2 x1 with 0 <= x <= 3: optimum at (0, 3).
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{1.0, -2.0};
  lp.lower_bounds = Vector{0.0, 0.0};
  lp.upper_bounds = Vector{3.0, 3.0};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -6.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6), value 36 -> minimize the negation.
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{-3.0, -5.0};
  lp.ub_matrix = Matrix{{1.0, 0.0}, {0.0, 2.0}, {3.0, 2.0}};
  lp.ub_rhs = Vector{4.0, 12.0, 18.0};
  lp.lower_bounds = Vector{0.0, 0.0};
  lp.upper_bounds = Vector{kLpInfinity, kLpInfinity};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(SimplexTest, EqualityConstrainedProblem) {
  // min x + 2y + 3z s.t. x + y + z = 10, x <= 4, y <= 4, z <= 4... optimum
  // fills cheapest first: x = 4, y = 4, z = 2, cost 4 + 8 + 6 = 18.
  LinearProgram lp = boxed_lp(3);
  lp.objective = Vector{1.0, 2.0, 3.0};
  lp.eq_matrix = Matrix{{1.0, 1.0, 1.0}};
  lp.eq_rhs = Vector{10.0};
  lp.lower_bounds = Vector{0.0, 0.0, 0.0};
  lp.upper_bounds = Vector{4.0, 4.0, 4.0};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 4.0, 1e-9);
  EXPECT_NEAR(s.x[2], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 18.0, 1e-9);
}

TEST(SimplexTest, FreeVariables) {
  // min |free structure|: min y s.t. y >= x - 1, y >= -x + 1 has no lower
  // bound on x; with y >= 0 the optimum is y = 0 at x = 1.
  // Formulated as: min y s.t. x - y <= 1, -x - y <= -1.
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{0.0, 1.0};
  lp.ub_matrix = Matrix{{1.0, -1.0}, {-1.0, -1.0}};
  lp.ub_rhs = Vector{1.0, -1.0};
  lp.lower_bounds = Vector{-kLpInfinity, 0.0};
  lp.upper_bounds = Vector{kLpInfinity, kLpInfinity};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.x[0], 1.0, 1e-8);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x with -5 <= x <= -2: optimum -5.
  LinearProgram lp = boxed_lp(1);
  lp.objective = Vector{1.0};
  lp.lower_bounds = Vector{-5.0};
  lp.upper_bounds = Vector{-2.0};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-9);
}

TEST(SimplexTest, UpperBoundOnlyVariable) {
  // max x (min -x) with x <= 7 and no lower bound -> x = 7.
  LinearProgram lp = boxed_lp(1);
  lp.objective = Vector{-1.0};
  lp.lower_bounds = Vector{-kLpInfinity};
  lp.upper_bounds = Vector{7.0};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x >= 0, x <= -1 via inequality row.
  LinearProgram lp = boxed_lp(1);
  lp.objective = Vector{1.0};
  lp.ub_matrix = Matrix{{1.0}};
  lp.ub_rhs = Vector{-1.0};
  lp.lower_bounds = Vector{0.0};
  lp.upper_bounds = Vector{kLpInfinity};
  EXPECT_EQ(solve_linear_program(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualities) {
  // x + y = 1 and x + y = 2 cannot both hold.
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{1.0, 1.0};
  lp.eq_matrix = Matrix{{1.0, 1.0}, {1.0, 1.0}};
  lp.eq_rhs = Vector{1.0, 2.0};
  lp.lower_bounds = Vector{0.0, 0.0};
  lp.upper_bounds = Vector{kLpInfinity, kLpInfinity};
  EXPECT_EQ(solve_linear_program(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x with x >= 0 and no other constraint.
  LinearProgram lp = boxed_lp(1);
  lp.objective = Vector{-1.0};
  lp.lower_bounds = Vector{0.0};
  lp.upper_bounds = Vector{kLpInfinity};
  EXPECT_EQ(solve_linear_program(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, HandlesRedundantEqualities) {
  // Duplicate rows must not break phase 1.
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{1.0, 1.0};
  lp.eq_matrix = Matrix{{1.0, 1.0}, {1.0, 1.0}};
  lp.eq_rhs = Vector{4.0, 4.0};
  lp.lower_bounds = Vector{0.0, 0.0};
  lp.upper_bounds = Vector{kLpInfinity, kLpInfinity};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum (degeneracy): Bland's rule
  // must still terminate.
  LinearProgram lp = boxed_lp(2);
  lp.objective = Vector{-1.0, -1.0};
  lp.ub_matrix = Matrix{{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  lp.ub_rhs = Vector{1.0, 1.0, 1.0, 2.0};
  lp.lower_bounds = Vector{0.0, 0.0};
  lp.upper_bounds = Vector{kLpInfinity, kLpInfinity};
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(SimplexTest, ValidatesDimensions) {
  LinearProgram lp = boxed_lp(2);
  lp.eq_matrix = Matrix{{1.0}};  // wrong column count
  lp.eq_rhs = Vector{1.0};
  EXPECT_THROW(solve_linear_program(lp), std::invalid_argument);

  LinearProgram lp2 = boxed_lp(2);
  lp2.lower_bounds = Vector{1.0, 1.0};
  lp2.upper_bounds = Vector{0.0, 2.0};  // crossed bounds
  EXPECT_THROW(solve_linear_program(lp2), std::invalid_argument);
}

// Property: for random box-constrained LPs with no other constraints, the
// optimum is the analytic bound selection.
class SimplexBoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBoxProperty, MatchesAnalyticBoxOptimum) {
  stats::Rng rng(GetParam());
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 5;
  LinearProgram lp = boxed_lp(n);
  double expected = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    lp.objective[j] = rng.gaussian();
    lp.lower_bounds[j] = -1.0 - rng.uniform();
    lp.upper_bounds[j] = 1.0 + rng.uniform();
    expected += lp.objective[j] * (lp.objective[j] >= 0.0
                                       ? lp.lower_bounds[j]
                                       : lp.upper_bounds[j]);
  }
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, expected, 1e-8);
}

// Property: transportation-style LPs — supply nodes to demand nodes; the
// solution must be feasible and match the greedy cost on a 1-demand case.
TEST_P(SimplexBoxProperty, SingleDemandMeritOrder) {
  stats::Rng rng(GetParam() + 500);
  const std::size_t n = 4;
  LinearProgram lp = boxed_lp(n);
  double demand = 0.0;
  std::vector<std::pair<double, double>> merit;  // (cost, cap)
  for (std::size_t j = 0; j < n; ++j) {
    lp.objective[j] = 1.0 + rng.uniform();
    lp.lower_bounds[j] = 0.0;
    lp.upper_bounds[j] = 1.0 + rng.uniform();
    merit.emplace_back(lp.objective[j], lp.upper_bounds[j]);
    demand += 0.4 * lp.upper_bounds[j];
  }
  lp.eq_matrix = Matrix(1, n);
  for (std::size_t j = 0; j < n; ++j) lp.eq_matrix(0, j) = 1.0;
  lp.eq_rhs = Vector{demand};

  std::sort(merit.begin(), merit.end());
  double remaining = demand, greedy_cost = 0.0;
  for (const auto& [cost, cap] : merit) {
    const double take = std::min(cap, remaining);
    greedy_cost += cost * take;
    remaining -= take;
  }
  const LpSolution s = solve_linear_program(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, greedy_cost, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexBoxProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace mtdgrid::opf
