// Thread-count invariance and race behavior of the serving daemon —
// registered in MTDGRID_CONCURRENCY_TESTS (ctest `concurrency` label), so
// the TSan CI leg runs every test here. CONTRIBUTING.md "Determinism
// rules for new code" is the contract being enforced.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve_test_util.hpp"

namespace mtdgrid::serve {
namespace {

/// The acceptance-criterion test: one request script, two daemons built
/// and served under different global thread counts, byte-identical
/// transcripts (the construction-time hour-0 re-key included).
TEST(ServeDaemonDeterminismTest, TranscriptsAreByteIdenticalAcrossThreads) {
  const std::vector<std::string> script = {
      R"({"op":"status"})",
      R"({"op":"dispatch","id":1})",
      R"({"op":"probe","id":2})",
      R"({"op":"detect","id":3,"method":"analytic"})",
      R"({"op":"detect","id":4,"method":"mc","trials":150})",
      R"({"op":"tick"})",
      R"({"op":"status"})",
      R"({"op":"dispatch","hour":1})",
      R"({"op":"detect","id":5,"hour":0,"method":"mc","trials":100})",
      R"({"op":"campaign","id":6,"probes":4})",
      R"({"op":"metrics"})",
  };
  const auto transcript_at = [&](std::size_t threads) {
    core::ThreadPool::set_global_num_threads(threads);
    const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
    std::vector<std::string> replies;
    for (const std::string& line : script)
      replies.push_back(daemon->handle_line(line));
    return replies;
  };
  const auto t1 = transcript_at(1);
  const auto t8 = transcript_at(8);
  core::ThreadPool::set_global_num_threads(0);  // restore the default
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_EQ(t1[i], t8[i]) << "request " << script[i];
}

/// A request pinned to a retained hour must return bit-identical replies
/// whether the daemon is quiescent or re-keying ticks are racing it: the
/// tick publishes each hour as one immutable snapshot swap, so a reader
/// never observes a half-applied key change.
TEST(ServeDaemonDeterminismTest, DetectRacingTickMatchesQuiescedRun) {
  const std::string detect_req =
      R"({"op":"detect","id":6,"hour":0,"method":"mc","trials":100})";
  const std::string probe_req = R"({"op":"probe","id":8,"hour":0})";

  // Reference replies from a quiesced daemon (no tick in flight).
  const std::unique_ptr<MtdDaemon> quiesced = test::make_fast_daemon();
  const std::string want_detect = quiesced->handle_line(detect_req);
  const std::string want_probe = quiesced->handle_line(probe_req);

  // Same-seed daemon: fire the same requests from two threads while a
  // third advances the virtual clock twice.
  const std::unique_ptr<MtdDaemon> racing = test::make_fast_daemon();
  std::vector<std::string> got_detect(16), got_probe(16);
  std::thread ticker([&] {
    racing->tick();
    racing->tick();
  });
  std::thread prober([&] {
    for (auto& reply : got_probe) reply = racing->handle_line(probe_req);
  });
  for (auto& reply : got_detect) reply = racing->handle_line(detect_req);
  ticker.join();
  prober.join();

  for (const std::string& reply : got_detect) EXPECT_EQ(reply, want_detect);
  for (const std::string& reply : got_probe) EXPECT_EQ(reply, want_probe);
  EXPECT_EQ(racing->current_hour(), 2u);
}

/// The lock-free read contract, enforced directly: status, probe, and
/// the bdd/analytic detects answer off the atomically published
/// snapshot window WITHOUT touching the exec lock. The test thread
/// holds the daemon's own write lock while issuing reads on the same
/// thread — an implementation that locked the read path would deadlock
/// right here (the ctest TIMEOUT is the backstop).
TEST(ServeDaemonLockFreeReadTest, ReadsAnswerWhileWriteLockIsHeld) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  const std::string want_status = daemon->handle_line(R"({"op":"status"})");
  {
    const MtdDaemon::ExecLock held = daemon->exec_lock();
    const Json status =
        Json::parse(daemon->handle_line(R"({"op":"status"})"));
    EXPECT_TRUE(status.find("ok")->as_bool());
    EXPECT_EQ(status.find("hour")->as_number(), 0.0);
    const Json probe =
        Json::parse(daemon->handle_line(R"({"op":"probe","id":2})"));
    EXPECT_TRUE(probe.find("ok")->as_bool());
    const Json detect = Json::parse(daemon->handle_line(
        R"({"op":"detect","id":3,"method":"analytic"})"));
    EXPECT_TRUE(detect.find("ok")->as_bool());
    const Json metrics =
        Json::parse(daemon->handle_line(R"({"op":"metrics"})"));
    EXPECT_TRUE(metrics.find("ok")->as_bool());
  }
  // With the lock released the write verbs work again.
  const Json tick = Json::parse(daemon->handle_line(R"({"op":"tick"})"));
  EXPECT_TRUE(tick.find("ok")->as_bool());
  EXPECT_EQ(tick.find("hour")->as_number(), 1.0);
}

/// While a long tick holds the write lock on another thread, reads keep
/// answering from the snapshot pinned before the tick: the stale-hour
/// reply carries the pinned "hour" until the tick publishes, and no
/// reader ever blocks behind the writer.
TEST(ServeDaemonLockFreeReadTest, ReadsServePinnedSnapshotDuringTick) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  {
    // Stand in for an in-flight tick: the exec lock is held, hour-0
    // state is still published. Reads must come back (same thread =
    // deadlock would hang) with the pinned hour.
    const MtdDaemon::ExecLock held = daemon->exec_lock();
    const Json status =
        Json::parse(daemon->handle_line(R"({"op":"status"})"));
    EXPECT_EQ(status.find("hour")->as_number(), 0.0);
    const Json pinned = Json::parse(
        daemon->handle_line(R"({"op":"probe","id":4,"hour":0})"));
    EXPECT_EQ(pinned.find("hour")->as_number(), 0.0);
  }
  // Now run a real tick on a second thread and reads from this one until
  // it publishes: every reply is coherent — hour 0 before, hour 1 after,
  // nothing in between.
  std::thread ticker([&] { daemon->tick(); });
  for (;;) {
    const Json status =
        Json::parse(daemon->handle_line(R"({"op":"status"})"));
    const double hour = status.find("hour")->as_number();
    EXPECT_TRUE(hour == 0.0 || hour == 1.0) << "hour " << hour;
    if (hour == 1.0) break;
  }
  ticker.join();
  EXPECT_EQ(daemon->current_hour(), 1u);
}

/// The latency accumulator's max is maintained by a CAS loop over
/// relaxed atomics: hammer it from 8 recorder threads with disjoint
/// value ranges and pin the exact count, max, and per-bucket totals.
/// TSan (the `concurrency` CI leg) checks the loop is race-free.
TEST(ServeDaemonLatencyRaceTest, ConcurrentRecordersKeepExactCountAndMax) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Thread t records 50 + t, 50 + t + 8, ...: every sample lands
        // in le_100us except the global max, planted by thread 7.
        const double sample =
            (t == kThreads - 1 && i == kPerThread - 1)
                ? 5e6
                : 50.0 + static_cast<double>(t + kThreads * i) /
                             static_cast<double>(kThreads * kPerThread);
        daemon->record_latency(sample);
      }
    });
  }
  for (std::thread& r : recorders) r.join();
  const Json reply = Json::parse(
      daemon->handle_line(R"({"op":"metrics","latency":true})"));
  const Json* latency = reply.find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_number(), kThreads * kPerThread);
  EXPECT_EQ(latency->find("max_us")->as_number(), 5e6);
  const Json* buckets = latency->find("buckets");
  EXPECT_EQ(buckets->find("le_100us")->as_number(),
            kThreads * kPerThread - 1);
  EXPECT_EQ(buckets->find("gt_1s")->as_number(), 1.0);
}

/// The tentpole acceptance at the daemon level: the deterministic engine
/// work counters in the default metrics reply are byte-identical across
/// thread counts. (The transcript test above already diffs the metrics
/// reply; this pins the counters individually with names in failures.)
TEST(ServeDaemonDeterminismTest, EngineWorkCountersMatchAcrossThreadCounts) {
  const auto engine_counters = [](std::size_t threads) {
    core::ThreadPool::set_global_num_threads(threads);
    const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
    daemon->handle_line(R"({"op":"detect","id":1,"method":"mc","trials":80})");
    daemon->handle_line(R"({"op":"tick"})");
    daemon->handle_line(R"({"op":"dispatch"})");
    return daemon->handle_line(R"({"op":"metrics"})");
  };
  const std::string t1 = engine_counters(1);
  const std::string t8 = engine_counters(8);
  core::ThreadPool::set_global_num_threads(0);
  EXPECT_EQ(t1, t8);
}

}  // namespace
}  // namespace mtdgrid::serve
