#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "serve_test_util.hpp"

namespace mtdgrid::serve {
namespace {

/// One daemon per test process for the request-behavior tests (ctest
/// runs each discovered test in its own process; within a process the
/// suite shares the instance). These tests never tick, so the current
/// hour stays 0.
class ServeDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { daemon_ = test::make_fast_daemon(); }
  static void TearDownTestSuite() { daemon_.reset(); }
  static std::unique_ptr<MtdDaemon> daemon_;
};

std::unique_ptr<MtdDaemon> ServeDaemonTest::daemon_;

TEST_F(ServeDaemonTest, ServesStatusAndDispatch) {
  const Json status = Json::parse(daemon_->handle_line(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());
  // The advertised protocol version is part of the wire contract:
  // clients pin it to detect incompatible daemons.
  EXPECT_EQ(status.find("proto")->as_number(), 2.0);
  EXPECT_EQ(status.find("proto")->as_number(), kProtocolVersion);
  EXPECT_EQ(status.find("case")->as_string(), "ieee14");
  EXPECT_EQ(status.find("hour")->as_number(), 0.0);
  EXPECT_EQ(status.find("hours_per_day")->as_number(), 24.0);
  EXPECT_TRUE(status.find("keyed")->as_bool());
  EXPECT_GT(status.find("gamma_th")->as_number(), 0.0);
  EXPECT_GT(status.find("eta")->as_number(), 0.0);

  const Json dispatch =
      Json::parse(daemon_->handle_line(R"({"op":"dispatch","id":9})"));
  EXPECT_TRUE(dispatch.find("ok")->as_bool());
  EXPECT_EQ(dispatch.find("id")->as_number(), 9.0);
  EXPECT_GT(dispatch.find("cost")->as_number(), 0.0);
  // One setpoint per D-FACTS branch, all strictly positive reactances.
  const Json::Array& setpoints = dispatch.find("setpoints")->as_array();
  ASSERT_EQ(setpoints.size(), 6u);  // case14 has 6 D-FACTS branches
  for (const Json& x : setpoints) EXPECT_GT(x.as_number(), 0.0);
}

TEST_F(ServeDaemonTest, MalformedLinesGetPinnedRepliesAndSessionSurvives) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not json",
       R"x({"ok":false,"error":"parse","message":"invalid JSON: invalid literal at offset 0"})x"},
      {"[1,2]",
       R"x({"ok":false,"error":"bad-request","message":"request must be a JSON object"})x"},
      {"{}",
       R"x({"ok":false,"error":"bad-request","message":"missing \"op\""})x"},
      {R"({"op":7})",
       R"x({"ok":false,"error":"bad-request","message":"\"op\" must be a string"})x"},
      {R"({"op":"zap"})",
       R"x({"ok":false,"error":"unknown-op","message":"unknown op \"zap\""})x"},
      {R"({"op":"status","id":-1})",
       R"x({"ok":false,"error":"bad-request","message":"\"id\" must be a non-negative integer"})x"},
      {R"({"op":"detect","z":"x"})",
       R"x({"ok":false,"error":"bad-request","message":"\"z\" must be an array of numbers"})x"},
      {R"({"op":"detect","z":[1,2]})",
       R"x({"ok":false,"error":"bad-request","message":"\"z\" must have 54 entries (order: L forward flows, L reverse flows, N injections; MW)"})x"},
      {R"({"op":"dispatch","hour":999})",
       R"x({"ok":false,"error":"bad-hour","message":"hour 999 is not retained (retained: 0..0)"})x"},
      {R"({"op":"detect","method":"fast"})",
       R"x({"ok":false,"error":"bad-request","message":"\"method\" must be \"bdd\", \"analytic\" or \"mc\""})x"},
      {R"({"op":"detect","method":"mc","trials":0})",
       R"x({"ok":false,"error":"bad-request","message":"\"trials\" must be an integer in [1, 1000000]"})x"},
      {R"({"op":"metrics","latency":1})",
       R"x({"ok":false,"error":"bad-request","message":"\"latency\" must be a boolean"})x"},
      {R"({"op":"detect","trace":1})",
       R"x({"ok":false,"error":"bad-request","message":"\"trace\" must be a boolean"})x"},
      {R"({"op":"metrics","format":"xml"})",
       R"x({"ok":false,"error":"bad-request","message":"\"format\" must be \"json\" or \"prometheus\""})x"},
      {R"({"op":"campaign","policy":"ramp"})",
       R"x({"ok":false,"error":"bad-request","message":"\"policy\" must be \"zero\", \"stale\", \"probe\" or \"omniscient\""})x"},
      {R"({"op":"campaign","probes":0})",
       R"x({"ok":false,"error":"bad-request","message":"\"probes\" must be an integer in [1, 10000]"})x"},
      {R"({"op":"campaign","hours":0})",
       R"x({"ok":false,"error":"bad-request","message":"\"hours\" must be a positive integer"})x"},
  };
  for (const auto& [line, want] : cases)
    EXPECT_EQ(daemon_->handle_line(line), want) << line;

  // The session survives every error: the next request still works.
  const Json status = Json::parse(daemon_->handle_line(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());

  // Blank lines produce no reply at all.
  EXPECT_EQ(daemon_->handle_line(""), "");
  EXPECT_EQ(daemon_->handle_line("  \r"), "");
}

TEST_F(ServeDaemonTest, ProbeIsAPureFunctionOfSeedHourAndId) {
  const std::string first = daemon_->handle_line(R"({"op":"probe","id":42})");
  const std::string again = daemon_->handle_line(R"({"op":"probe","id":42})");
  EXPECT_EQ(first, again);  // same (seed, hour, id) => same bytes
  const std::string other = daemon_->handle_line(R"({"op":"probe","id":43})");
  EXPECT_NE(first, other);  // sibling substreams differ

  const Json probe = Json::parse(first);
  EXPECT_TRUE(probe.find("ok")->as_bool());
  EXPECT_FALSE(probe.find("alarm")->as_bool());  // attack-free sample
  EXPECT_EQ(probe.find("z")->as_array().size(), 54u);  // M = 2L + N
}

TEST_F(ServeDaemonTest, DetectFlagsInjectedDeviationAndScoresIt) {
  // The hour's noiseless reference never alarms.
  const Json clean = Json::parse(daemon_->handle_line(R"({"op":"detect"})"));
  EXPECT_TRUE(clean.find("ok")->as_bool());
  EXPECT_FALSE(clean.find("alarm")->as_bool());
  EXPECT_LT(clean.find("residual")->as_number(), 1e-6);
  EXPECT_GT(clean.find("tau")->as_number(), 0.0);
  EXPECT_EQ(clean.find("dof")->as_number(), 41.0);  // M - n = 54 - 13

  // A probe sample (realistic attack-free noise) stays quiet, while the
  // same sample with 80 MW injected on one flow measurement trips the
  // chi-square detector with near-certain detection probability.
  const Json probe =
      Json::parse(daemon_->handle_line(R"({"op":"probe","id":7})"));
  const Json::Array& z = probe.find("z")->as_array();
  Json clean_z, attacked_z;
  for (std::size_t i = 0; i < z.size(); ++i) {
    clean_z.push_back(Json(z[i].as_number()));
    attacked_z.push_back(Json(z[i].as_number() + (i == 0 ? 80.0 : 0.0)));
  }
  Json clean_req, attacked_req;
  clean_req.set("op", Json("detect"));
  clean_req.set("z", std::move(clean_z));
  attacked_req.set("op", Json("detect"));
  attacked_req.set("method", Json("analytic"));
  attacked_req.set("z", std::move(attacked_z));

  const Json no_alarm = Json::parse(daemon_->handle_line(clean_req.dump()));
  EXPECT_FALSE(no_alarm.find("alarm")->as_bool());
  const Json alarm = Json::parse(daemon_->handle_line(attacked_req.dump()));
  EXPECT_TRUE(alarm.find("alarm")->as_bool());
  EXPECT_GT(alarm.find("p_detect")->as_number(), 0.99);
}

TEST_F(ServeDaemonTest, MonteCarloDetectUsesPerRequestSubstreams) {
  const std::string req =
      R"({"op":"detect","id":5,"method":"mc","trials":200})";
  const std::string first = daemon_->handle_line(req);
  EXPECT_EQ(daemon_->handle_line(req), first);  // same id => same bytes
  const Json parsed = Json::parse(first);
  EXPECT_EQ(parsed.find("method")->as_string(), "mc");
  EXPECT_EQ(parsed.find("trials")->as_number(), 200.0);
  // Attack-free vector: detection probability is the false-positive rate.
  EXPECT_LT(parsed.find("p_detect")->as_number(), 0.05);
}

TEST_F(ServeDaemonTest, MetricsCountsRequestsDeterministically) {
  const Json before = Json::parse(daemon_->handle_line(R"({"op":"metrics"})"));
  daemon_->handle_line(R"({"op":"dispatch"})");
  daemon_->handle_line(R"({"op":"nope"})");
  const Json after = Json::parse(daemon_->handle_line(R"({"op":"metrics"})"));
  // Counters include the handled line itself: +3 requests since `before`
  // (dispatch, the error, this metrics call), +1 dispatch, +1 error.
  EXPECT_EQ(after.find("requests")->as_number(),
            before.find("requests")->as_number() + 3);
  EXPECT_EQ(after.find("dispatch")->as_number(),
            before.find("dispatch")->as_number() + 1);
  EXPECT_EQ(after.find("errors")->as_number(),
            before.find("errors")->as_number() + 1);
  EXPECT_EQ(after.find("metrics")->as_number(),
            before.find("metrics")->as_number() + 1);
  // The latency histogram is opt-in: it is the one nondeterministic
  // reply section, so the default reply must not carry it.
  EXPECT_EQ(after.find("latency_us"), nullptr);
  const Json with_latency =
      Json::parse(daemon_->handle_line(R"({"op":"metrics","latency":true})"));
  const Json* latency = with_latency.find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->find("count")->as_number(), 0.0);
  EXPECT_GT(latency->find("max_us")->as_number(), 0.0);
  EXPECT_NE(latency->find("buckets"), nullptr);
}

TEST_F(ServeDaemonTest, DefaultMetricsCarryDeterministicEngineCounters) {
  // Drive known engine work first so the counters are visibly non-zero.
  daemon_->handle_line(R"({"op":"detect","id":1,"method":"mc","trials":50})");
  const Json reply = Json::parse(daemon_->handle_line(R"({"op":"metrics"})"));
  const Json* engine = reply.find("engine");
  ASSERT_NE(engine, nullptr);
  // Every deterministic work counter appears, by its obs name ...
  for (std::size_t i = 0; i < obs::kWorkCount; ++i) {
    const obs::WorkInfo& info = obs::work_info(static_cast<obs::Work>(i));
    if (info.deterministic)
      ASSERT_NE(engine->find(info.name), nullptr) << info.name;
    else
      EXPECT_EQ(engine->find(info.name), nullptr) << info.name;
  }
  // ... and the instrumented hot paths actually flowed into them: the
  // construction pass keys a day (LP dispatches), and the MC detect
  // above contributes its exact trial count.
  EXPECT_GT(engine->find("simplex_solves")->as_number(), 0.0);
  EXPECT_GT(engine->find("simplex_phase2_iterations")->as_number(), 0.0);
  EXPECT_GT(engine->find("engine_hours")->as_number(), 0.0);
  EXPECT_GE(engine->find("mc_trials")->as_number(), 50.0);
}

TEST_F(ServeDaemonTest, PrometheusFormatExposesWorkAndLatencySeries) {
  const Json reply = Json::parse(
      daemon_->handle_line(R"({"op":"metrics","format":"prometheus"})"));
  EXPECT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("format")->as_string(), "prometheus");
  const Json* text_field = reply.find("prometheus");
  ASSERT_NE(text_field, nullptr);
  const std::string& text = text_field->as_string();
  EXPECT_NE(text.find("# TYPE mtdgrid_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mtdgrid_verb_requests_total{verb=\"detect\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mtdgrid_current_hour gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("mtdgrid_request_latency_seconds_bucket{le=\"+Inf\"}"),
      std::string::npos);
  // The Prometheus form carries ALL work counters, structural pool
  // counters included (they are fine for dashboards, just not for
  // byte-diffed transcripts).
  for (std::size_t i = 0; i < obs::kWorkCount; ++i) {
    const std::string series =
        std::string("mtdgrid_work_") +
        obs::work_info(static_cast<obs::Work>(i)).name + "_total";
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
  // An explicit "json" format is the default form, not an error.
  const Json json_form = Json::parse(
      daemon_->handle_line(R"({"op":"metrics","format":"json"})"));
  EXPECT_TRUE(json_form.find("ok")->as_bool());
  EXPECT_EQ(json_form.find("prometheus"), nullptr);
  ASSERT_NE(json_form.find("engine"), nullptr);
}

TEST_F(ServeDaemonTest, TraceOptInSplicesAggregatedSpans) {
  // Default replies carry no trace section (wall-clock data would break
  // transcript byte-diffs).
  const std::string plain = daemon_->handle_line(R"({"op":"dispatch"})");
  EXPECT_EQ(plain.find("trace_us"), std::string::npos);

  const Json traced = Json::parse(
      daemon_->handle_line(R"({"op":"dispatch","id":3,"trace":true})"));
  EXPECT_TRUE(traced.find("ok")->as_bool());
  const Json* spans = traced.find("trace_us");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  // The request-level span is always present and aggregated once.
  ASSERT_FALSE(spans->as_array().empty());
  const Json& top = spans->as_array()[0];
  EXPECT_EQ(top.find("name")->as_string(), "dispatch");
  EXPECT_EQ(top.find("cat")->as_string(), "serve");
  EXPECT_EQ(top.find("count")->as_number(), 1.0);
  EXPECT_GE(top.find("total_us")->as_number(), 0.0);

  // Apart from the spliced trace section, the reply matches the untraced
  // one byte for byte (same snapshot, same deterministic payload).
  const Json untraced =
      Json::parse(daemon_->handle_line(R"({"op":"dispatch","id":3})"));
  EXPECT_EQ(untraced.find("cost")->as_number(),
            traced.find("cost")->as_number());

  // A traced MC detect fans out through the engine: the simplex/MC spans
  // recorded on pool workers land in the same aggregation.
  const Json mc = Json::parse(daemon_->handle_line(
      R"({"op":"detect","id":4,"method":"mc","trials":30,"trace":true})"));
  const Json* mc_spans = mc.find("trace_us");
  ASSERT_NE(mc_spans, nullptr);
  bool saw_mc = false;
  for (const Json& s : mc_spans->as_array())
    if (s.find("name")->as_string() == "estimation.mc_detect") saw_mc = true;
  EXPECT_TRUE(saw_mc);
}

TEST(ServeDaemonLatencyTest, BucketIndexPinsInclusiveBoundaries) {
  // A sample exactly on kLatencyBucketsUs[i] files under bucket i.
  EXPECT_EQ(latency_bucket_index(0.0), 0);
  EXPECT_EQ(latency_bucket_index(100.0), 0);
  EXPECT_EQ(latency_bucket_index(100.0000001), 1);
  EXPECT_EQ(latency_bucket_index(1e3), 1);
  EXPECT_EQ(latency_bucket_index(1e4), 2);
  EXPECT_EQ(latency_bucket_index(1e5), 3);
  EXPECT_EQ(latency_bucket_index(1e6), 4);
  EXPECT_EQ(latency_bucket_index(1e6 + 1.0), 5);
}

TEST(ServeDaemonLatencyTest, InjectedSamplesPinExactBucketCounts) {
  // A fresh daemon records no latency during construction, so injected
  // samples are the whole accumulator; the metrics reply reads the
  // state BEFORE recording its own service time, so the first metrics
  // call sees exactly the injection.
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  const double samples[] = {50.0, 100.0, 100.5, 1e3, 1e4, 1e5, 1e6, 2e6};
  for (const double s : samples) daemon->record_latency(s);
  const Json reply = Json::parse(
      daemon->handle_line(R"({"op":"metrics","latency":true})"));
  const Json* latency = reply.find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->as_number(), 8.0);
  EXPECT_EQ(latency->find("max_us")->as_number(), 2e6);
  const Json* buckets = latency->find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->find("le_100us")->as_number(), 2.0);  // 50, 100
  EXPECT_EQ(buckets->find("le_1ms")->as_number(), 2.0);    // 100.5, 1e3
  EXPECT_EQ(buckets->find("le_10ms")->as_number(), 1.0);   // 1e4
  EXPECT_EQ(buckets->find("le_100ms")->as_number(), 1.0);  // 1e5
  EXPECT_EQ(buckets->find("le_1s")->as_number(), 1.0);     // 1e6
  EXPECT_EQ(buckets->find("gt_1s")->as_number(), 1.0);     // 2e6
}

TEST_F(ServeDaemonTest, CampaignNeedsTwoKeyedHours) {
  // The fixture never ticks: only hour 0 is retained, so there is no
  // (prev, cur) re-keying boundary to score. Pinned error, not a crash.
  EXPECT_EQ(
      daemon_->handle_line(R"({"op":"campaign"})"),
      R"x({"ok":false,"error":"not-keyed","message":"campaign needs two consecutive keyed retained hours (tick first)"})x");
}

TEST(ServeDaemonLifecycleTest, CampaignScoresKnowledgeFrontierOverWindow) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(Json::parse(daemon->handle_line(R"({"op":"tick"})"))
                    .find("ok")
                    ->as_bool());

  // Same (seed, window, id) => same bytes, regardless of what ran in
  // between: the campaign substream is keyed by (id, policy, hour).
  const std::string first =
      daemon->handle_line(R"({"op":"campaign","id":1})");
  daemon->handle_line(R"({"op":"probe","id":5})");
  EXPECT_EQ(daemon->handle_line(R"({"op":"campaign","id":1})"), first);

  const Json reply = Json::parse(first);
  ASSERT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("op")->as_string(), "campaign");
  EXPECT_EQ(reply.find("hours_scored")->as_number(), 2.0);
  EXPECT_EQ(reply.find("first_hour")->as_number(), 1.0);
  EXPECT_EQ(reply.find("last_hour")->as_number(), 2.0);

  // Default panel: all four wire policies, fixed order, and the
  // knowledge axis is monotone — more knowledge, less detection.
  const Json::Array& policies = reply.find("policies")->as_array();
  ASSERT_EQ(policies.size(), 4u);
  EXPECT_EQ(policies[0].find("policy")->as_string(), "zero");
  EXPECT_EQ(policies[1].find("policy")->as_string(), "stale");
  EXPECT_EQ(policies[2].find("policy")->as_string(), "probe");
  EXPECT_EQ(policies[2].find("probe_budget")->as_number(), 8.0);
  EXPECT_EQ(policies[3].find("policy")->as_string(), "omniscient");
  const double zero = policies[0].find("mean_detection")->as_number();
  const double omni = policies[3].find("mean_detection")->as_number();
  EXPECT_GT(zero, 0.5);
  EXPECT_LT(omni, 0.05);
  EXPECT_LT(omni, zero);
  EXPECT_EQ(policies[3].find("eta")->as_number(), 0.0);  // evasion baseline
  EXPECT_EQ(policies[2].find("probes_used")->as_number(), 16.0);  // 8 x 2
  EXPECT_EQ(policies[1].find("boundary_replays")->as_number(), 2.0);
  for (const Json& cell : policies) {
    EXPECT_EQ(cell.find("hourly_mean_detection")->as_array().size(), 2u);
    EXPECT_EQ(cell.find("hourly_eta")->as_array().size(), 2u);
  }

  // A single-policy request reproduces that policy's section of the
  // all-policies reply exactly (same id, same window, same substream).
  const Json probe_only = Json::parse(daemon->handle_line(
      R"({"op":"campaign","id":1,"policy":"probe","probes":8})"));
  const Json::Array& only = probe_only.find("policies")->as_array();
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].find("mean_detection")->as_number(),
            policies[2].find("mean_detection")->as_number());
  EXPECT_EQ(only[0].find("eta")->as_number(),
            policies[2].find("eta")->as_number());

  // "hours":1 trims to the most recent boundary.
  const Json last_only = Json::parse(
      daemon->handle_line(R"({"op":"campaign","id":1,"hours":1})"));
  EXPECT_EQ(last_only.find("hours_scored")->as_number(), 1.0);
  EXPECT_EQ(last_only.find("first_hour")->as_number(), 2.0);

  // The verb shows up in the deterministic metrics counters.
  const Json metrics =
      Json::parse(daemon->handle_line(R"({"op":"metrics"})"));
  EXPECT_EQ(metrics.find("campaign")->as_number(), 4.0);
}

TEST(ServeDaemonLifecycleTest, TickRetainsHistoryAndPinsHours) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  const std::string hour0_dispatch =
      daemon->handle_line(R"({"op":"dispatch","hour":0})");

  for (int i = 0; i < 2; ++i) {
    const Json tick = Json::parse(daemon->handle_line(R"({"op":"tick"})"));
    EXPECT_TRUE(tick.find("ok")->as_bool());
  }
  EXPECT_EQ(daemon->current_hour(), 2u);

  // Hour 0 is still retained (history covers it) and replies for it are
  // byte-identical to the pre-tick ones: pinned hours read immutable
  // snapshots, unaffected by later re-keying.
  EXPECT_EQ(daemon->handle_line(R"({"op":"dispatch","hour":0})"),
            hour0_dispatch);

  // The current hour moved on.
  const Json status = Json::parse(daemon->handle_line(R"({"op":"status"})"));
  EXPECT_EQ(status.find("hour")->as_number(), 2.0);
  const Json::Array& retained = status.find("retained")->as_array();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].as_number(), 0.0);
  EXPECT_EQ(retained[1].as_number(), 2.0);

  // Shutdown verb: ok reply, flag set; the daemon itself still answers
  // (the transport layer decides when to stop serving).
  const Json bye = Json::parse(daemon->handle_line(R"({"op":"shutdown"})"));
  EXPECT_TRUE(bye.find("ok")->as_bool());
  EXPECT_TRUE(daemon->shutdown_requested());
  EXPECT_TRUE(
      Json::parse(daemon->handle_line(R"({"op":"status"})"))
          .find("ok")
          ->as_bool());
}

}  // namespace
}  // namespace mtdgrid::serve
