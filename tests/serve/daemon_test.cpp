#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "serve/json.hpp"
#include "serve_test_util.hpp"

namespace mtdgrid::serve {
namespace {

/// One daemon per test process for the request-behavior tests (ctest
/// runs each discovered test in its own process; within a process the
/// suite shares the instance). These tests never tick, so the current
/// hour stays 0.
class ServeDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { daemon_ = test::make_fast_daemon(); }
  static void TearDownTestSuite() { daemon_.reset(); }
  static std::unique_ptr<MtdDaemon> daemon_;
};

std::unique_ptr<MtdDaemon> ServeDaemonTest::daemon_;

TEST_F(ServeDaemonTest, ServesStatusAndDispatch) {
  const Json status = Json::parse(daemon_->handle_line(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());
  // The advertised protocol version is part of the wire contract:
  // clients pin it to detect incompatible daemons.
  EXPECT_EQ(status.find("proto")->as_number(), 2.0);
  EXPECT_EQ(status.find("proto")->as_number(), kProtocolVersion);
  EXPECT_EQ(status.find("case")->as_string(), "ieee14");
  EXPECT_EQ(status.find("hour")->as_number(), 0.0);
  EXPECT_EQ(status.find("hours_per_day")->as_number(), 24.0);
  EXPECT_TRUE(status.find("keyed")->as_bool());
  EXPECT_GT(status.find("gamma_th")->as_number(), 0.0);
  EXPECT_GT(status.find("eta")->as_number(), 0.0);

  const Json dispatch =
      Json::parse(daemon_->handle_line(R"({"op":"dispatch","id":9})"));
  EXPECT_TRUE(dispatch.find("ok")->as_bool());
  EXPECT_EQ(dispatch.find("id")->as_number(), 9.0);
  EXPECT_GT(dispatch.find("cost")->as_number(), 0.0);
  // One setpoint per D-FACTS branch, all strictly positive reactances.
  const Json::Array& setpoints = dispatch.find("setpoints")->as_array();
  ASSERT_EQ(setpoints.size(), 6u);  // case14 has 6 D-FACTS branches
  for (const Json& x : setpoints) EXPECT_GT(x.as_number(), 0.0);
}

TEST_F(ServeDaemonTest, MalformedLinesGetPinnedRepliesAndSessionSurvives) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not json",
       R"x({"ok":false,"error":"parse","message":"invalid JSON: invalid literal at offset 0"})x"},
      {"[1,2]",
       R"x({"ok":false,"error":"bad-request","message":"request must be a JSON object"})x"},
      {"{}",
       R"x({"ok":false,"error":"bad-request","message":"missing \"op\""})x"},
      {R"({"op":7})",
       R"x({"ok":false,"error":"bad-request","message":"\"op\" must be a string"})x"},
      {R"({"op":"zap"})",
       R"x({"ok":false,"error":"unknown-op","message":"unknown op \"zap\""})x"},
      {R"({"op":"status","id":-1})",
       R"x({"ok":false,"error":"bad-request","message":"\"id\" must be a non-negative integer"})x"},
      {R"({"op":"detect","z":"x"})",
       R"x({"ok":false,"error":"bad-request","message":"\"z\" must be an array of numbers"})x"},
      {R"({"op":"detect","z":[1,2]})",
       R"x({"ok":false,"error":"bad-request","message":"\"z\" must have 54 entries (order: L forward flows, L reverse flows, N injections; MW)"})x"},
      {R"({"op":"dispatch","hour":999})",
       R"x({"ok":false,"error":"bad-hour","message":"hour 999 is not retained (retained: 0..0)"})x"},
      {R"({"op":"detect","method":"fast"})",
       R"x({"ok":false,"error":"bad-request","message":"\"method\" must be \"bdd\", \"analytic\" or \"mc\""})x"},
      {R"({"op":"detect","method":"mc","trials":0})",
       R"x({"ok":false,"error":"bad-request","message":"\"trials\" must be an integer in [1, 1000000]"})x"},
      {R"({"op":"metrics","latency":1})",
       R"x({"ok":false,"error":"bad-request","message":"\"latency\" must be a boolean"})x"},
  };
  for (const auto& [line, want] : cases)
    EXPECT_EQ(daemon_->handle_line(line), want) << line;

  // The session survives every error: the next request still works.
  const Json status = Json::parse(daemon_->handle_line(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());

  // Blank lines produce no reply at all.
  EXPECT_EQ(daemon_->handle_line(""), "");
  EXPECT_EQ(daemon_->handle_line("  \r"), "");
}

TEST_F(ServeDaemonTest, ProbeIsAPureFunctionOfSeedHourAndId) {
  const std::string first = daemon_->handle_line(R"({"op":"probe","id":42})");
  const std::string again = daemon_->handle_line(R"({"op":"probe","id":42})");
  EXPECT_EQ(first, again);  // same (seed, hour, id) => same bytes
  const std::string other = daemon_->handle_line(R"({"op":"probe","id":43})");
  EXPECT_NE(first, other);  // sibling substreams differ

  const Json probe = Json::parse(first);
  EXPECT_TRUE(probe.find("ok")->as_bool());
  EXPECT_FALSE(probe.find("alarm")->as_bool());  // attack-free sample
  EXPECT_EQ(probe.find("z")->as_array().size(), 54u);  // M = 2L + N
}

TEST_F(ServeDaemonTest, DetectFlagsInjectedDeviationAndScoresIt) {
  // The hour's noiseless reference never alarms.
  const Json clean = Json::parse(daemon_->handle_line(R"({"op":"detect"})"));
  EXPECT_TRUE(clean.find("ok")->as_bool());
  EXPECT_FALSE(clean.find("alarm")->as_bool());
  EXPECT_LT(clean.find("residual")->as_number(), 1e-6);
  EXPECT_GT(clean.find("tau")->as_number(), 0.0);
  EXPECT_EQ(clean.find("dof")->as_number(), 41.0);  // M - n = 54 - 13

  // A probe sample (realistic attack-free noise) stays quiet, while the
  // same sample with 80 MW injected on one flow measurement trips the
  // chi-square detector with near-certain detection probability.
  const Json probe =
      Json::parse(daemon_->handle_line(R"({"op":"probe","id":7})"));
  const Json::Array& z = probe.find("z")->as_array();
  Json clean_z, attacked_z;
  for (std::size_t i = 0; i < z.size(); ++i) {
    clean_z.push_back(Json(z[i].as_number()));
    attacked_z.push_back(Json(z[i].as_number() + (i == 0 ? 80.0 : 0.0)));
  }
  Json clean_req, attacked_req;
  clean_req.set("op", Json("detect"));
  clean_req.set("z", std::move(clean_z));
  attacked_req.set("op", Json("detect"));
  attacked_req.set("method", Json("analytic"));
  attacked_req.set("z", std::move(attacked_z));

  const Json no_alarm = Json::parse(daemon_->handle_line(clean_req.dump()));
  EXPECT_FALSE(no_alarm.find("alarm")->as_bool());
  const Json alarm = Json::parse(daemon_->handle_line(attacked_req.dump()));
  EXPECT_TRUE(alarm.find("alarm")->as_bool());
  EXPECT_GT(alarm.find("p_detect")->as_number(), 0.99);
}

TEST_F(ServeDaemonTest, MonteCarloDetectUsesPerRequestSubstreams) {
  const std::string req =
      R"({"op":"detect","id":5,"method":"mc","trials":200})";
  const std::string first = daemon_->handle_line(req);
  EXPECT_EQ(daemon_->handle_line(req), first);  // same id => same bytes
  const Json parsed = Json::parse(first);
  EXPECT_EQ(parsed.find("method")->as_string(), "mc");
  EXPECT_EQ(parsed.find("trials")->as_number(), 200.0);
  // Attack-free vector: detection probability is the false-positive rate.
  EXPECT_LT(parsed.find("p_detect")->as_number(), 0.05);
}

TEST_F(ServeDaemonTest, MetricsCountsRequestsDeterministically) {
  const Json before = Json::parse(daemon_->handle_line(R"({"op":"metrics"})"));
  daemon_->handle_line(R"({"op":"dispatch"})");
  daemon_->handle_line(R"({"op":"nope"})");
  const Json after = Json::parse(daemon_->handle_line(R"({"op":"metrics"})"));
  // Counters include the handled line itself: +3 requests since `before`
  // (dispatch, the error, this metrics call), +1 dispatch, +1 error.
  EXPECT_EQ(after.find("requests")->as_number(),
            before.find("requests")->as_number() + 3);
  EXPECT_EQ(after.find("dispatch")->as_number(),
            before.find("dispatch")->as_number() + 1);
  EXPECT_EQ(after.find("errors")->as_number(),
            before.find("errors")->as_number() + 1);
  EXPECT_EQ(after.find("metrics")->as_number(),
            before.find("metrics")->as_number() + 1);
  // The latency histogram is opt-in: it is the one nondeterministic
  // reply section, so the default reply must not carry it.
  EXPECT_EQ(after.find("latency_us"), nullptr);
  const Json with_latency =
      Json::parse(daemon_->handle_line(R"({"op":"metrics","latency":true})"));
  const Json* latency = with_latency.find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->find("count")->as_number(), 0.0);
  EXPECT_GT(latency->find("max_us")->as_number(), 0.0);
  EXPECT_NE(latency->find("buckets"), nullptr);
}

TEST(ServeDaemonLifecycleTest, TickRetainsHistoryAndPinsHours) {
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  const std::string hour0_dispatch =
      daemon->handle_line(R"({"op":"dispatch","hour":0})");

  for (int i = 0; i < 2; ++i) {
    const Json tick = Json::parse(daemon->handle_line(R"({"op":"tick"})"));
    EXPECT_TRUE(tick.find("ok")->as_bool());
  }
  EXPECT_EQ(daemon->current_hour(), 2u);

  // Hour 0 is still retained (history covers it) and replies for it are
  // byte-identical to the pre-tick ones: pinned hours read immutable
  // snapshots, unaffected by later re-keying.
  EXPECT_EQ(daemon->handle_line(R"({"op":"dispatch","hour":0})"),
            hour0_dispatch);

  // The current hour moved on.
  const Json status = Json::parse(daemon->handle_line(R"({"op":"status"})"));
  EXPECT_EQ(status.find("hour")->as_number(), 2.0);
  const Json::Array& retained = status.find("retained")->as_array();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].as_number(), 0.0);
  EXPECT_EQ(retained[1].as_number(), 2.0);

  // Shutdown verb: ok reply, flag set; the daemon itself still answers
  // (the transport layer decides when to stop serving).
  const Json bye = Json::parse(daemon->handle_line(R"({"op":"shutdown"})"));
  EXPECT_TRUE(bye.find("ok")->as_bool());
  EXPECT_TRUE(daemon->shutdown_requested());
  EXPECT_TRUE(
      Json::parse(daemon->handle_line(R"({"op":"status"})"))
          .find("ok")
          ->as_bool());
}

}  // namespace
}  // namespace mtdgrid::serve
