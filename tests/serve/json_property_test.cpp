// Property tests for the serve/ JSON codec: seeded random value trees
// must round-trip byte-identically through dump -> parse -> dump. The
// daemon's transcript determinism (and the sharded fleet's batch
// replies) lean on this stability, so it is pinned here directly with
// deterministic pseudo-random inputs — same seed, same trees, every run
// and every platform.

#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include "stats/rng.hpp"

namespace mtdgrid::serve {
namespace {

/// Appends `cp` (a Unicode scalar value) to `out` as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// A random string mixing plain ASCII, characters the serializer must
/// escape (controls, quote, backslash), multi-byte UTF-8, and non-BMP
/// code points (the ones a \u-escaped wire form spells as surrogate
/// pairs).
std::string random_string(stats::Rng& rng) {
  const std::uint64_t len = rng.uniform_index(12);
  std::string s;
  for (std::uint64_t i = 0; i < len; ++i) {
    switch (rng.uniform_index(6)) {
      case 0:
        s += static_cast<char>('a' + rng.uniform_index(26));
        break;
      case 1:  // must be \u00XX-escaped on output
        append_utf8(s, static_cast<std::uint32_t>(rng.uniform_index(0x20)));
        break;
      case 2:
        s += (rng.uniform_index(2) == 0) ? '"' : '\\';
        break;
      case 3:  // two-byte UTF-8 (Latin-1 supplement and friends)
        append_utf8(s, 0x80 + static_cast<std::uint32_t>(
                                  rng.uniform_index(0x700)));
        break;
      case 4:  // three-byte UTF-8, dodging the surrogate range
        append_utf8(s, 0x1000 + static_cast<std::uint32_t>(
                                    rng.uniform_index(0x8000)));
        break;
      default:  // non-BMP: emoji block and beyond
        append_utf8(s, 0x10000 + static_cast<std::uint32_t>(
                                     rng.uniform_index(0x10000)));
        break;
    }
  }
  return s;
}

/// A random finite double: mostly small "friendly" values, sometimes a
/// raw 64-bit pattern reinterpreted as a double (the adversarial case
/// for shortest-round-trip formatting).
double random_number(stats::Rng& rng) {
  if (rng.uniform_index(2) == 0)
    return std::floor(rng.uniform(-1000.0, 1000.0) * 16.0) / 16.0;
  for (;;) {
    const double v = std::bit_cast<double>(rng.next_u64());
    if (std::isfinite(v)) return v;
  }
}

/// A random value tree of height <= `depth`.
Json random_value(stats::Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform_index(depth > 0 ? 6 : 4);
  switch (kind) {
    case 0:
      return Json();
    case 1:
      return Json(rng.uniform_index(2) == 0);
    case 2:
      return Json(random_number(rng));
    case 3:
      return Json(random_string(rng));
    case 4: {
      Json arr{Json::Array{}};
      const std::uint64_t n = rng.uniform_index(4);
      for (std::uint64_t i = 0; i < n; ++i)
        arr.push_back(random_value(rng, depth - 1));
      return arr;
    }
    default: {
      Json obj{Json::Object{}};
      const std::uint64_t n = rng.uniform_index(4);
      for (std::uint64_t i = 0; i < n; ++i)
        obj.set(random_string(rng), random_value(rng, depth - 1));
      return obj;
    }
  }
}

TEST(JsonPropertyTest, RandomTreesRoundTripByteIdentically) {
  stats::Rng rng(0x4a50726f70ULL);  // fixed seed: same trees every run
  for (int trial = 0; trial < 500; ++trial) {
    const Json tree = random_value(rng, 5);
    const std::string once = tree.dump();
    const Json reparsed = Json::parse(once);
    const std::string twice = reparsed.dump();
    ASSERT_EQ(once, twice) << "trial " << trial;
    // And idempotent from there on: the dumped form is a fixed point.
    ASSERT_EQ(Json::parse(twice).dump(), twice) << "trial " << trial;
  }
}

TEST(JsonPropertyTest, RandomDoublesRoundTripExactly) {
  stats::Rng rng(0x646f75626cULL);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = random_number(rng);
    const std::string text = Json(v).dump();
    const double back = Json::parse(text).as_number();
    // Shortest-round-trip formatting (std::to_chars): bit-exact recovery.
    ASSERT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v))
        << "trial " << trial << " text " << text;
  }
}

TEST(JsonPropertyTest, SurrogatePairEscapesRoundTrip) {
  // U+1F600 arrives as a \u-escaped surrogate pair; the parser must
  // combine the pair, and the serializer re-emits it as raw UTF-8
  // (which then round-trips as-is).
  const Json parsed = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(parsed.as_string(), "\xF0\x9F\x98\x80");
  const std::string dumped = parsed.dump();
  EXPECT_EQ(dumped, "\"\xF0\x9F\x98\x80\"");
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);

  // Lone or malformed surrogates are rejected, not silently passed on.
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);
  EXPECT_THROW(Json::parse(R"("\ud83dxy")"), JsonError);
  EXPECT_THROW(Json::parse(R"("\ud83dA")"), JsonError);
}

TEST(JsonPropertyTest, NestingDepthBoundaryIsExact) {
  // The documented limit is 64 nesting levels. The top-level value sits
  // at depth 0, so 65 brackets (depths 0..64) parse and 66 do not — and
  // the accepted maximum still round-trips byte-identically.
  const auto nested = [](int levels) {
    std::string s(static_cast<std::size_t>(levels), '[');
    s.append(static_cast<std::size_t>(levels), ']');
    return s;
  };
  const std::string at_limit = nested(65);
  EXPECT_EQ(Json::parse(at_limit).dump(), at_limit);
  EXPECT_THROW(Json::parse(nested(66)), JsonError);
}

TEST(JsonPropertyTest, RandomStringsSurviveSerialization) {
  stats::Rng rng(0x737472696eULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string s = random_string(rng);
    const std::string wire = Json(s).dump();
    EXPECT_EQ(Json::parse(wire).as_string(), s) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mtdgrid::serve
