#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mtdgrid::serve {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  17 ").as_number(), 17.0);
}

TEST(JsonTest, ParsesNestedStructures) {
  const Json doc = Json::parse(
      R"({"op":"detect","z":[1.5,-2,3e1],"nested":{"deep":[true,null]}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("op")->as_string(), "detect");
  const Json::Array& z = doc.find("z")->as_array();
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[1].as_number(), -2.0);
  EXPECT_DOUBLE_EQ(z[2].as_number(), 30.0);
  const Json* deep = doc.find("nested")->find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->as_array()[1].is_null());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair escape: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(Json::parse("\"\xf0\x9f\x98\x80\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ErrorsCarryOffsets) {
  const auto offset_of = [](const std::string& text) -> std::size_t {
    try {
      Json::parse(text);
    } catch (const JsonError& e) {
      return e.offset();
    }
    ADD_FAILURE() << "no error for: " << text;
    return static_cast<std::size_t>(-1);
  };
  EXPECT_EQ(offset_of("nope"), 0u);
  EXPECT_EQ(offset_of("{\"a\":}"), 5u);
  EXPECT_EQ(offset_of("[1,2"), 4u);
  EXPECT_EQ(offset_of("{\"a\":1} trailing"), 8u);
  EXPECT_EQ(offset_of("\"unterminated"), 13u);
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("1e999"), JsonError);
  EXPECT_THROW(Json::parse("{1:2}"), JsonError);
  EXPECT_THROW(Json::parse("007"), JsonError);  // RFC 8259: no leading zeros
  EXPECT_THROW(Json::parse("-01"), JsonError);
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(Json::parse("-0").as_number(), 0.0);
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);
  EXPECT_THROW(Json::parse("\"ctrl\x01\""), JsonError);
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(JsonTest, DumpIsCompactOrderedAndRoundTrips) {
  Json obj;
  obj.set("ok", Json(true));
  obj.set("op", Json("status"));
  obj.set("hour", Json(std::size_t{7}));
  Json arr;
  arr.push_back(Json(0.1));
  arr.push_back(Json(-3.0));
  obj.set("z", std::move(arr));
  EXPECT_EQ(obj.dump(), R"({"ok":true,"op":"status","hour":7,"z":[0.1,-3]})");

  // Shortest-round-trip doubles: dump(parse(dump(x))) is stable.
  const double awkward[] = {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                            -123456.789012345678};
  for (const double v : awkward) {
    const std::string once = Json(v).dump();
    const Json back = Json::parse(once);
    EXPECT_EQ(back.as_number(), v) << once;
    EXPECT_EQ(back.dump(), once);
  }
}

TEST(JsonTest, DumpEscapesStrings) {
  const std::string with_ctrl = std::string("a\"b\\c\n") + '\x01';
  EXPECT_EQ(Json(with_ctrl).dump(), "\"a\\\"b\\\\c\\n\\u0001\"");
}

TEST(JsonTest, AccessorsThrowOnTypeMismatch) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json(true).as_array(), JsonError);
  EXPECT_EQ(Json(1.0).find("k"), nullptr);
}

}  // namespace
}  // namespace mtdgrid::serve
