#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "serve/daemon.hpp"
#include "serve/sharded.hpp"

namespace mtdgrid::serve::test {

/// Small-budget daemon options shared by the serve test binaries: the
/// protocol behavior under test does not depend on search quality, and
/// the daemon constructor pays a full pass-1 day plus the hour-0 re-key,
/// so every knob is turned down to keep the suites fast (also under the
/// TSan `concurrency` leg).
inline DaemonOptions fast_daemon_options() {
  DaemonOptions options;
  options.seed = 11;
  options.history_hours = 4;
  options.daily.gamma_grid = {0.05, 0.15};
  options.daily.base_search_evaluations = 120;
  options.daily.effectiveness.num_attacks = 40;
  options.daily.selection.extra_starts = 1;
  options.daily.selection.search.max_evaluations = 150;
  return options;
}

/// A case14 daemon on the NYISO trace with `fast_daemon_options`.
inline std::unique_ptr<MtdDaemon> make_fast_daemon() {
  return std::make_unique<MtdDaemon>(
      grid::make_case14(), grid::DailyLoadTrace::nyiso_winter_weekday(),
      fast_daemon_options());
}

/// `fast_daemon_options` transplanted onto a `shards`-wide fleet: every
/// shard is case14 on the NYISO trace, re-keying with the same reduced
/// budgets. Root seed 11, so shard k runs seed `stream_seed(11, k)`.
inline ShardedOptions fast_sharded_options(std::size_t shards) {
  const DaemonOptions base = fast_daemon_options();
  ShardedOptions options;
  options.cases.assign(shards, "case14");
  options.seed = base.seed;
  options.history_hours = base.history_hours;
  options.daily = base.daily;
  return options;
}

/// A `shards`-wide fleet with `fast_sharded_options`.
inline std::unique_ptr<ShardedDaemon> make_fast_fleet(std::size_t shards) {
  std::vector<std::pair<grid::PowerSystem, grid::DailyLoadTrace>> systems;
  for (std::size_t k = 0; k < shards; ++k)
    systems.emplace_back(grid::make_case14(),
                         grid::DailyLoadTrace::nyiso_winter_weekday());
  return std::make_unique<ShardedDaemon>(std::move(systems),
                                         fast_sharded_options(shards));
}

}  // namespace mtdgrid::serve::test
