// Socket-level tests of the serving transport: the daemon behind a
// loopback `SocketServer`, driven by raw TCP clients exactly as
// `nc`/`mtd_daemon --client` would. Registered in
// MTDGRID_CONCURRENCY_TESTS (the server spins one thread per connection
// plus the accept loop), so the TSan CI leg covers the transport too.

#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "serve/json.hpp"
#include "serve_test_util.hpp"

namespace mtdgrid::serve {
namespace {

/// Minimal blocking line-protocol client.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends `line` + newline and returns the newline-terminated reply
  /// (without the newline); empty string on error/EOF.
  std::string round_trip(const std::string& line) {
    if (!send_raw(line + "\n")) return "";
    return read_line();
  }

  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// One daemon + server pair per test process (ctest runs every
/// discovered test in its own process, so suite state never leaks
/// between tests — the shutdown test in particular gets a fresh
/// transport).
class SocketServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    daemon_ = test::make_fast_daemon();
    server_ = std::make_unique<SocketServer>(*daemon_, 0);
  }
  static void TearDownTestSuite() {
    server_.reset();
    daemon_.reset();
  }
  static std::unique_ptr<MtdDaemon> daemon_;
  static std::unique_ptr<SocketServer> server_;
};

std::unique_ptr<MtdDaemon> SocketServerTest::daemon_;
std::unique_ptr<SocketServer> SocketServerTest::server_;

TEST_F(SocketServerTest, ServesTheProtocolOverLoopback) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const Json status = Json::parse(client.round_trip(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());
  EXPECT_EQ(status.find("case")->as_string(), "ieee14");

  // In-process and socket paths are the same code path: byte-identical.
  EXPECT_EQ(client.round_trip(R"({"op":"dispatch","id":3})"),
            daemon_->handle_line(R"({"op":"dispatch","id":3})"));
}

TEST_F(SocketServerTest, ConnectionSurvivesMalformedLines) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.round_trip("not json"),
            R"x({"ok":false,"error":"parse","message":"invalid JSON: invalid literal at offset 0"})x");
  EXPECT_EQ(client.round_trip(R"({"op":"zap"})"),
            R"x({"ok":false,"error":"unknown-op","message":"unknown op \"zap\""})x");
  // Same connection, next request still served. CRLF line endings (nc,
  // telnet) are accepted too.
  const std::string reply = client.round_trip(R"({"op":"status"})" "\r");
  EXPECT_TRUE(Json::parse(reply).find("ok")->as_bool());
}

TEST_F(SocketServerTest, ConcurrentConnectionsShareTheDaemon) {
  TestClient a(server_->port());
  TestClient b(server_->port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  // Pipelined batch on one connection while the other queries: replies
  // come back in request order per connection.
  ASSERT_TRUE(a.send_raw("{\"op\":\"probe\",\"id\":1}\n"
                         "{\"op\":\"probe\",\"id\":2}\n"));
  const Json from_b = Json::parse(b.round_trip(R"({"op":"status"})"));
  EXPECT_TRUE(from_b.find("ok")->as_bool());
  const Json first = Json::parse(a.read_line());
  const Json second = Json::parse(a.read_line());
  EXPECT_EQ(first.find("id")->as_number(), 1.0);
  EXPECT_EQ(second.find("id")->as_number(), 2.0);
}

TEST_F(SocketServerTest, ShutdownVerbMidHourStopsServerCleanly) {
  // Start a re-keying tick on one connection, then — while the hour is
  // still being keyed — request shutdown from another. The shutdown
  // serializes behind the in-flight tick (both replies arrive), wait()
  // returns, and the transport tears down without leaking threads.
  TestClient ticker(server_->port());
  TestClient killer(server_->port());
  ASSERT_TRUE(ticker.connected());
  ASSERT_TRUE(killer.connected());
  ASSERT_TRUE(ticker.send_raw("{\"op\":\"tick\"}\n"));
  const std::string bye = killer.round_trip(R"({"op":"shutdown"})");
  EXPECT_EQ(bye, R"({"ok":true,"op":"shutdown"})");
  const Json tick = Json::parse(ticker.read_line());
  EXPECT_TRUE(tick.find("ok")->as_bool());
  EXPECT_EQ(tick.find("hour")->as_number(), 1.0);

  server_->wait();  // returns once the transport is fully down
  EXPECT_TRUE(daemon_->shutdown_requested());

  // The daemon core still answers in-process after transport teardown
  // (clean shutdown mid-hour loses no state).
  const Json status = Json::parse(daemon_->handle_line(R"({"op":"status"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());
  EXPECT_EQ(status.find("hour")->as_number(), 1.0);
}

TEST_F(SocketServerTest, CrlfLineYieldsByteIdenticalReplyToLf) {
  // nc/telnet terminate lines with \r\n; the reply must be the exact
  // bytes an LF-only client gets (dispatch replies carry no counters,
  // so they are byte-comparable).
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string want =
      daemon_->handle_line(R"({"op":"dispatch","id":11})");
  EXPECT_EQ(client.round_trip(R"({"op":"dispatch","id":11})" "\r"), want);
}

TEST_F(SocketServerTest, LargeLineUnderTheCapIsServedIdentically) {
  // A line padded to ~1 MB of leading whitespace stays under the 4 MB
  // cap and must produce the exact reply of its unpadded form — the cap
  // is a limit, not a performance cliff that changes behavior.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string want =
      daemon_->handle_line(R"({"op":"dispatch","id":12})");
  const std::string padded = std::string(1u << 20, ' ') +
                             R"({"op":"dispatch","id":12})";
  EXPECT_EQ(client.round_trip(padded), want);
}

TEST_F(SocketServerTest, OverlongLineWithoutNewlineDropsTheConnection) {
  // kMaxLineBytes is 4 MB: a peer that streams more than that without a
  // newline is violating the protocol and gets disconnected (the buffer
  // would otherwise grow without bound). The send may also fail part
  // way once the server closes its end — both are a dropped peer.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string blob(1u << 20, 'x');  // 1 MB, no newline
  bool sent = true;
  for (int i = 0; i < 5 && sent; ++i) sent = client.send_raw(blob);
  if (sent) client.send_raw("\n");  // even a late newline cannot save it
  EXPECT_EQ(client.read_line(), "");  // EOF: the server dropped us

  // The server itself survives: a fresh connection is served normally.
  TestClient fresh(server_->port());
  ASSERT_TRUE(fresh.connected());
  EXPECT_TRUE(
      Json::parse(fresh.round_trip(R"({"op":"status"})")).find("ok")->as_bool());
}

TEST(SocketServerStandaloneTest, AcceptsTheInstantConstructionReturns) {
  // The listener must be in LISTEN state before the constructor returns
  // (listen() directly follows bind(): no window where the ephemeral
  // port is known but connections are refused). Exercised by churning
  // fresh servers and connecting immediately each time.
  auto daemon = test::make_fast_daemon();
  for (int i = 0; i < 8; ++i) {
    SocketServer server(*daemon, 0);
    TestClient client(server.port());
    ASSERT_TRUE(client.connected()) << "round " << i;
    const Json status = Json::parse(client.round_trip(R"({"op":"status"})"));
    EXPECT_TRUE(status.find("ok")->as_bool()) << "round " << i;
    server.stop();
  }
}

TEST(SocketServerStandaloneTest, BindFailureThrows) {
  // Two servers cannot share a port: the second constructor must throw
  // instead of silently serving nothing. (Daemon reuse across servers is
  // fine — transports are independent of the core.)
  auto daemon = test::make_fast_daemon();
  SocketServer first(*daemon, 0);
  EXPECT_THROW((SocketServer(*daemon, first.port())), std::runtime_error);
  first.stop();
}

}  // namespace
}  // namespace mtdgrid::serve
