// Shard isolation and thread-count invariance of the serving fleet —
// registered in MTDGRID_CONCURRENCY_TESTS (ctest `concurrency` label),
// so the TSan CI leg runs every test here. The contract (DESIGN.md
// "Fleet sharding"): shard k's transcript is bit-identical whether the
// shard runs alone as a bare MtdDaemon, or inside a fleet with busy
// neighbors, at any global thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "serve/daemon.hpp"
#include "serve/sharded.hpp"
#include "serve_test_util.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::serve {
namespace {

/// The shard-0 request script. Every verb class is represented: lock-free
/// reads (status, probe, analytic detect), the exec-locked Monte-Carlo
/// detect (which fans out on the shared pool), and a routed tick.
const std::vector<std::string> kScript = {
    R"({"op":"status"})",
    R"({"op":"dispatch","id":1})",
    R"({"op":"probe","id":2})",
    R"({"op":"detect","id":3,"method":"analytic"})",
    R"({"op":"detect","id":4,"method":"mc","trials":100})",
    R"({"op":"tick"})",
    R"({"op":"dispatch","hour":1})",
    R"({"op":"metrics"})",
};

/// Adds `"shard":0` routing to a script line (spliced before the
/// closing brace, so the reply bytes are unaffected — routing fields
/// never echo).
std::string routed(const std::string& line) {
  return line.substr(0, line.size() - 1) + R"(,"shard":0})";
}

/// Runs the script against shard 0 of a 2-shard fleet while a neighbor
/// thread hammers shard 1 with Monte-Carlo detects and ticks, under
/// `threads` global pool threads. Returns shard 0's replies.
std::vector<std::string> fleet_transcript(std::size_t threads) {
  core::ThreadPool::set_global_num_threads(threads);
  const std::unique_ptr<ShardedDaemon> fleet = test::make_fast_fleet(2);
  std::thread neighbor([&] {
    for (int n = 0; n < 24; ++n) {
      fleet->handle_line(
          R"({"op":"detect","id":)" + std::to_string(n) +
          R"(,"method":"mc","trials":100,"shard":1})");
      if (n % 8 == 7) fleet->handle_line(R"({"op":"tick","shard":1})");
    }
  });
  std::vector<std::string> replies;
  for (const std::string& line : kScript)
    replies.push_back(fleet->handle_line(routed(line)));
  neighbor.join();
  core::ThreadPool::set_global_num_threads(0);
  return replies;
}

/// The acceptance-criterion test: shard 0's transcript beside a busy
/// neighbor is byte-identical to a bare MtdDaemon running alone on the
/// same seed substream — at 1 worker thread and at 8.
TEST(ShardedDeterminismTest, ShardTranscriptIsIsolatedFromNeighbors) {
  // Reference: shard 0 "running alone" is a bare daemon seeded with the
  // fleet root's substream stream_seed(seed, 0).
  DaemonOptions solo_options = test::fast_daemon_options();
  solo_options.seed = stats::stream_seed(solo_options.seed, 0);
  const std::unique_ptr<MtdDaemon> solo = std::make_unique<MtdDaemon>(
      grid::make_case14(), grid::DailyLoadTrace::nyiso_winter_weekday(),
      solo_options);
  std::vector<std::string> alone;
  for (const std::string& line : kScript)
    alone.push_back(solo->handle_line(line));

  const std::vector<std::string> beside1 = fleet_transcript(1);
  const std::vector<std::string> beside8 = fleet_transcript(8);
  ASSERT_EQ(alone.size(), beside1.size());
  ASSERT_EQ(alone.size(), beside8.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_EQ(alone[i], beside1[i]) << "request " << kScript[i];
    EXPECT_EQ(alone[i], beside8[i]) << "request " << kScript[i];
  }
}

/// A broadcast tick (all shard locks, one parallel region) must be
/// bit-identical to ticking each shard individually, and the fleet it
/// leaves behind must serve identical replies.
TEST(ShardedDeterminismTest, BroadcastTickMatchesIndividualTicks) {
  core::ThreadPool::set_global_num_threads(8);
  const std::unique_ptr<ShardedDaemon> broadcast = test::make_fast_fleet(2);
  const std::unique_ptr<ShardedDaemon> individual = test::make_fast_fleet(2);

  const std::vector<std::size_t> hours = broadcast->tick_all();
  std::vector<std::size_t> hours_individual;
  for (std::size_t k = 0; k < individual->num_shards(); ++k)
    hours_individual.push_back(individual->shard(k).tick());
  EXPECT_EQ(hours, hours_individual);

  for (std::size_t k = 0; k < broadcast->num_shards(); ++k) {
    for (std::size_t hour = 0; hour <= hours[k]; ++hour) {
      const std::string req = R"({"op":"dispatch","hour":)" +
                              std::to_string(hour) + R"(,"shard":)" +
                              std::to_string(k) + "}";
      EXPECT_EQ(broadcast->handle_line(req), individual->handle_line(req))
          << "shard " << k << " hour " << hour;
    }
  }
  core::ThreadPool::set_global_num_threads(0);
}

/// Concurrent broadcast ticks and cross-shard reads from many transport
/// threads: no tearing, every reply well-formed, hours advance by
/// exactly the number of ticks. (The TSan leg is the real assertion.)
TEST(ShardedDeterminismTest, ConcurrentBroadcastsAndReadsStayCoherent) {
  const std::unique_ptr<ShardedDaemon> fleet = test::make_fast_fleet(2);
  std::thread ticker([&] {
    fleet->handle_line(R"({"op":"tick"})");
    fleet->handle_line(R"({"op":"tick"})");
  });
  std::vector<std::string> replies(32);
  std::thread reader([&] {
    for (std::size_t n = 0; n < replies.size(); ++n)
      replies[n] = fleet->handle_line(
          R"({"op":"status","shard":)" + std::to_string(n % 2) + "}");
  });
  ticker.join();
  reader.join();
  for (const std::string& reply : replies)
    EXPECT_EQ(reply.rfind(R"({"ok":true,"op":"status")", 0), 0u) << reply;
  EXPECT_EQ(fleet->shard(0).current_hour(), 2u);
  EXPECT_EQ(fleet->shard(1).current_hour(), 2u);
}

}  // namespace
}  // namespace mtdgrid::serve
