// Protocol-level tests of the sharded serving fleet: the routing
// grammar ("shard"/"case" fields, broadcast tick, batch arrays), the
// pinned fleet-level error strings, and the contract that routing a
// request through the fleet is byte-identical to serving it on the
// shard directly. Thread-count invariance and shard isolation live in
// sharded_concurrency_test.cpp.

#include "serve/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "serve_test_util.hpp"

namespace mtdgrid::serve {
namespace {

/// One 2-shard fleet per test process (ctest runs every discovered test
/// in its own process; the construction cost — two pass-1 days — is the
/// price of suite isolation).
class ShardedDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fleet_ = test::make_fast_fleet(2); }
  static void TearDownTestSuite() { fleet_.reset(); }
  static std::unique_ptr<ShardedDaemon> fleet_;
};

std::unique_ptr<ShardedDaemon> ShardedDaemonTest::fleet_;

TEST_F(ShardedDaemonTest, RoutesByShardIndex) {
  // Routed through the fleet == served on the shard directly, byte for
  // byte (dispatch replies carry no counters, so they are comparable).
  const std::string via_fleet =
      fleet_->handle_line(R"({"op":"dispatch","id":3,"shard":1})");
  const std::string direct =
      fleet_->shard(1).handle_line(R"({"op":"dispatch","id":3})");
  EXPECT_EQ(via_fleet, direct);

  // Distinct seed substreams: the same probe request draws different
  // noise per shard (the hour-0 keys themselves may coincide — the fast
  // selection budgets can land both shards on the same optimum — but
  // the request substreams are rooted at each shard's own seed).
  EXPECT_NE(fleet_->handle_line(R"({"op":"probe","id":3,"shard":0})"),
            fleet_->handle_line(R"({"op":"probe","id":3,"shard":1})"));

  // No routing field: shard 0 serves.
  EXPECT_EQ(fleet_->handle_line(R"({"op":"dispatch","id":3})"),
            fleet_->handle_line(R"({"op":"dispatch","id":3,"shard":0})"));
}

TEST_F(ShardedDaemonTest, RoutesByCaseName) {
  // Both shards serve "ieee14" (the explicit-system name); "case" picks
  // the FIRST matching shard.
  const Json status =
      Json::parse(fleet_->handle_line(R"({"op":"status","case":"ieee14"})"));
  EXPECT_TRUE(status.find("ok")->as_bool());
  EXPECT_EQ(status.find("case")->as_string(), "ieee14");
  EXPECT_EQ(fleet_->handle_line(R"({"op":"probe","id":5,"case":"ieee14"})"),
            fleet_->handle_line(R"({"op":"probe","id":5,"shard":0})"));
}

TEST_F(ShardedDaemonTest, PinnedRoutingErrorReplies) {
  EXPECT_EQ(
      fleet_->handle_line(R"({"op":"status","shard":9})"),
      R"x({"ok":false,"error":"bad-shard","message":"shard 9 is not served (shards: 0..1)"})x");
  EXPECT_EQ(
      fleet_->handle_line(R"({"op":"status","case":"case300"})"),
      R"({"ok":false,"error":"bad-shard","message":"case \"case300\" is not served"})");
  EXPECT_EQ(
      fleet_->handle_line(R"({"op":"status","shard":0,"case":"ieee14"})"),
      R"({"ok":false,"error":"bad-request","message":"give \"shard\" or \"case\", not both"})");
  EXPECT_EQ(
      fleet_->handle_line(R"({"op":"status","shard":-1})"),
      R"({"ok":false,"error":"bad-request","message":"\"shard\" must be a non-negative integer"})");
  EXPECT_EQ(
      fleet_->handle_line(R"({"op":"status","case":14})"),
      R"({"ok":false,"error":"bad-request","message":"\"case\" must be a string"})");
  EXPECT_EQ(
      fleet_->handle_line("7"),
      R"({"ok":false,"error":"bad-request","message":"request must be a JSON object or array"})");
  EXPECT_EQ(
      fleet_->handle_line("not json"),
      R"x({"ok":false,"error":"parse","message":"invalid JSON: invalid literal at offset 0"})x");
}

TEST_F(ShardedDaemonTest, FleetErrorsTouchNoShardCounters) {
  const std::uint64_t before0 = fleet_->shard(0).counters().requests;
  const std::uint64_t before1 = fleet_->shard(1).counters().requests;
  fleet_->handle_line("not json");
  fleet_->handle_line(R"({"op":"status","shard":9})");
  fleet_->handle_line("[]");
  EXPECT_EQ(fleet_->shard(0).counters().requests, before0);
  EXPECT_EQ(fleet_->shard(1).counters().requests, before1);
}

TEST_F(ShardedDaemonTest, BatchRepliesPreserveInputOrder) {
  // Reference replies first (probe/dispatch replies are pure functions
  // of (seed, hour, id) — serving them twice is byte-stable).
  const std::vector<std::string> elements = {
      R"({"op":"probe","id":1,"shard":0})",
      R"({"op":"probe","id":1,"shard":1})",
      R"({"op":"dispatch","id":2,"shard":1})",
      R"({"op":"probe","id":9,"shard":0})",
  };
  std::vector<std::string> sequential;
  for (const std::string& line : elements)
    sequential.push_back(fleet_->handle_line(line));

  const std::string batched = fleet_->handle_line(
      "[" + elements[0] + "," + elements[1] + "," + elements[2] + "," +
      elements[3] + "]");
  EXPECT_EQ(batched, "[" + sequential[0] + "," + sequential[1] + "," +
                         sequential[2] + "," + sequential[3] + "]");

  // Replies stay in input order even when ids would suggest otherwise:
  // element 3 (id 9) answers after element 2 (id 2).
  const Json parsed = Json::parse(batched);
  ASSERT_EQ(parsed.as_array().size(), 4u);
  EXPECT_EQ(parsed.as_array()[3].find("id")->as_number(), 9.0);
}

TEST_F(ShardedDaemonTest, BatchElementsFailIndependently) {
  const std::string reply = fleet_->handle_line(
      R"([{"op":"status","shard":0},{"op":"zap"},3,{"op":"status","shard":9}])");
  const Json parsed = Json::parse(reply);
  ASSERT_EQ(parsed.as_array().size(), 4u);
  EXPECT_TRUE(parsed.as_array()[0].find("ok")->as_bool());
  EXPECT_EQ(parsed.as_array()[1].find("error")->as_string(), "unknown-op");
  EXPECT_EQ(parsed.as_array()[2].find("message")->as_string(),
            "request must be a JSON object");
  EXPECT_EQ(parsed.as_array()[3].find("error")->as_string(), "bad-shard");
}

TEST_F(ShardedDaemonTest, EmptyBatchRejected) {
  EXPECT_EQ(
      fleet_->handle_line("[]"),
      R"({"ok":false,"error":"bad-request","message":"batch must not be empty"})");
}

TEST_F(ShardedDaemonTest, UnroutedTickBroadcastsToAllShards) {
  const std::size_t h0 = fleet_->shard(0).current_hour();
  const std::size_t h1 = fleet_->shard(1).current_hour();
  const Json reply =
      Json::parse(fleet_->handle_line(R"({"op":"tick","id":7})"));
  EXPECT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("op")->as_string(), "tick");
  EXPECT_EQ(reply.find("id")->as_number(), 7.0);
  ASSERT_EQ(reply.find("hours")->as_array().size(), 2u);
  EXPECT_EQ(reply.find("hours")->as_array()[0].as_number(),
            static_cast<double>(h0 + 1));
  EXPECT_EQ(reply.find("hours")->as_array()[1].as_number(),
            static_cast<double>(h1 + 1));
  ASSERT_EQ(reply.find("keyed")->as_array().size(), 2u);

  // A *routed* tick advances only its shard.
  const Json routed =
      Json::parse(fleet_->handle_line(R"({"op":"tick","shard":1})"));
  EXPECT_TRUE(routed.find("ok")->as_bool());
  EXPECT_EQ(fleet_->shard(0).current_hour(), h0 + 1);
  EXPECT_EQ(fleet_->shard(1).current_hour(), h1 + 2);
}

TEST_F(ShardedDaemonTest, ShutdownPropagatesToTheFleet) {
  EXPECT_FALSE(fleet_->shutdown_requested());
  EXPECT_EQ(fleet_->handle_line(R"({"op":"shutdown","shard":1})"),
            R"({"ok":true,"op":"shutdown"})");
  EXPECT_TRUE(fleet_->shutdown_requested());
  EXPECT_TRUE(fleet_->shard(0).shutdown_requested());
  EXPECT_TRUE(fleet_->shard(1).shutdown_requested());
}

TEST(ShardedDaemonStandaloneTest, BareDaemonIgnoresRoutingFields) {
  // A bare MtdDaemon is the degenerate 1-shard fleet: it accepts (and
  // ignores) the routing fields, so clients can talk to either the
  // daemon or a fleet with the same request lines.
  const std::unique_ptr<MtdDaemon> daemon = test::make_fast_daemon();
  EXPECT_EQ(daemon->handle_line(R"({"op":"dispatch","id":3,"shard":5})"),
            daemon->handle_line(R"({"op":"dispatch","id":3})"));
  EXPECT_EQ(daemon->handle_line(R"({"op":"dispatch","id":3,"case":"x"})"),
            daemon->handle_line(R"({"op":"dispatch","id":3})"));
}

TEST_F(ShardedDaemonTest, AggregateWorkSumsShardRegistries) {
  // Drive counted work onto a specific shard, then check the fleet
  // aggregate is exactly the element-wise sum of the shard registries.
  fleet_->handle_line(
      R"({"op":"detect","id":9,"method":"mc","trials":60,"shard":1})");
  obs::WorkSnapshot expected{};
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}}) {
    const obs::WorkSnapshot w = fleet_->shard(k).registry().work_snapshot();
    for (std::size_t i = 0; i < obs::kWorkCount; ++i) expected[i] += w[i];
  }
  const obs::WorkSnapshot total = fleet_->aggregate_work();
  for (std::size_t i = 0; i < obs::kWorkCount; ++i)
    EXPECT_EQ(total[i], expected[i])
        << obs::work_info(static_cast<obs::Work>(i)).name;
  // Both shards keyed a pass-1 day at construction, so per-shard work is
  // non-zero and the aggregate strictly dominates either shard alone.
  const std::size_t hours =
      static_cast<std::size_t>(obs::Work::kEngineHours);
  EXPECT_GT(fleet_->shard(0).registry().work_snapshot()[hours], 0u);
  EXPECT_EQ(total[hours],
            fleet_->shard(0).registry().work_snapshot()[hours] +
                fleet_->shard(1).registry().work_snapshot()[hours]);
  // The MC trials driven above landed on shard 1's registry, not 0's.
  const std::size_t mc = static_cast<std::size_t>(obs::Work::kMcTrials);
  EXPECT_GE(fleet_->shard(1).registry().work_snapshot()[mc], 60u);
}

TEST(ShardedDaemonStandaloneTest, ConstructorRejectsEmptyFleet) {
  EXPECT_THROW(ShardedDaemon(ShardedOptions{.cases = {}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::serve
