#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "stats/rng.hpp"

namespace mtdgrid::stats {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);           // Gamma(1) = 1
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);           // Gamma(2) = 1
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);  // Gamma(5) = 24
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(std::numbers::pi)), 1e-10);
}

TEST(LogGammaTest, RecurrenceRelation) {
  // log Gamma(x+1) = log Gamma(x) + log x.
  for (double x : {0.3, 1.7, 4.2, 11.5}) {
    EXPECT_NEAR(log_gamma(x + 1.0), log_gamma(x) + std::log(x), 1e-9);
  }
}

TEST(IncompleteGammaTest, ComplementaritySumsToOne) {
  for (double a : {0.5, 2.0, 7.5}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(IncompleteGammaTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 50.0), 1.0, 1e-12);
}

TEST(IncompleteGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(ChiSquareTest, MedianRoughlyAtDofMinusTwoThirds) {
  // Known approximation: median ~ k(1 - 2/(9k))^3.
  for (double k : {2.0, 5.0, 20.0, 41.0}) {
    const double median = chi_square_quantile(0.5, k);
    const double approx = k * std::pow(1.0 - 2.0 / (9.0 * k), 3);
    EXPECT_NEAR(median, approx, 0.05 * k);
  }
}

TEST(ChiSquareTest, TwoDofClosedForm) {
  // chi^2 with 2 dof is Exp(1/2): F(x) = 1 - exp(-x/2).
  for (double x : {0.5, 2.0, 6.0}) {
    EXPECT_NEAR(chi_square_cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-10);
  }
}

// Quantile/CDF round trip over a grid of (dof, p).
class ChiSquareRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChiSquareRoundTrip, QuantileInvertsCdf) {
  const double k = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  const double x = chi_square_quantile(p, k);
  EXPECT_NEAR(chi_square_cdf(x, k), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChiSquareRoundTrip,
    ::testing::Combine(::testing::Values(1.0, 2.0, 5.0, 13.0, 41.0, 95.0),
                       ::testing::Values(0.001, 0.05, 0.5, 0.95, 0.9995)));

TEST(NoncentralChiSquareTest, ReducesToCentralAtZeroLambda) {
  for (double k : {3.0, 10.0, 41.0}) {
    for (double x : {1.0, 8.0, 30.0}) {
      EXPECT_NEAR(noncentral_chi_square_cdf(x, k, 0.0),
                  chi_square_cdf(x, k), 1e-10);
    }
  }
}

TEST(NoncentralChiSquareTest, CdfDecreasesWithLambda) {
  // Larger noncentrality shifts mass right, so the CDF at fixed x drops —
  // this is the mechanism behind Theorem 1's detection-probability claim.
  const double x = 50.0, k = 41.0;
  double prev = noncentral_chi_square_cdf(x, k, 0.0);
  for (double lambda : {1.0, 5.0, 20.0, 80.0}) {
    const double cur = noncentral_chi_square_cdf(x, k, lambda);
    EXPECT_LT(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(NoncentralChiSquareTest, SurvivalComplement) {
  EXPECT_NEAR(noncentral_chi_square_cdf(30.0, 10.0, 5.0) +
                  noncentral_chi_square_sf(30.0, 10.0, 5.0),
              1.0, 1e-12);
}

TEST(NoncentralChiSquareTest, MatchesMonteCarlo) {
  // Sample ||Z + mu||^2 with Z ~ N(0, I_k) and ||mu||^2 = lambda.
  const int k = 8;
  const double lambda = 12.0;
  Rng rng(99);
  const int n = 200000;
  const double x = 25.0;
  int below = 0;
  for (int t = 0; t < n; ++t) {
    double ss = 0.0;
    for (int i = 0; i < k; ++i) {
      const double mean = (i == 0) ? std::sqrt(lambda) : 0.0;
      const double z = rng.gaussian() + mean;
      ss += z * z;
    }
    if (ss <= x) ++below;
  }
  const double empirical = static_cast<double>(below) / n;
  EXPECT_NEAR(noncentral_chi_square_cdf(x, k, lambda), empirical, 0.005);
}

TEST(NoncentralChiSquareTest, LargeLambdaStability) {
  const double v = noncentral_chi_square_cdf(500.0, 41.0, 400.0);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
  // Mean is k + lambda = 441 < 500, so CDF should exceed one half.
  EXPECT_GT(v, 0.5);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(SummaryTest, BasicStatistics) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(values, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(SummaryTest, EmptyAndSingleton) {
  EXPECT_EQ(summarize(nullptr, 0).count, 0u);
  const double one = 7.0;
  const Summary s = summarize(&one, 1);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace mtdgrid::stats
