#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

namespace mtdgrid::stats {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(13), 13u);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithMeanAndStddev) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(10.0, 2.0);
    sum += g;
    sum_sq += (g - 10.0) * (g - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(RngTest, GaussianTailsAreReasonable) {
  Rng rng(14);
  int beyond3 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (std::abs(rng.gaussian()) > 3.0) ++beyond3;
  // P(|Z| > 3) ~ 0.0027.
  EXPECT_GT(beyond3, 100);
  EXPECT_LT(beyond3, 600);
}

// --- counter-based substreams (the parallel seeding contract) ------------

TEST(StreamTest, SplitConsumesExactlyOneDraw) {
  Rng a(21), b(21);
  const std::uint64_t root = a.split();
  EXPECT_EQ(root, b.next_u64());
  EXPECT_EQ(a.next_u64(), b.next_u64());  // generators stay in lockstep
}

TEST(StreamTest, StreamsAreReproducible) {
  Rng one = make_stream(1234, 56);
  Rng two = make_stream(1234, 56);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(one.next_u64(), two.next_u64());
}

TEST(StreamTest, DistinctIndicesGiveDistinctStreams) {
  // No collisions in the derived seeds over a family much larger than any
  // per-call task count, plus across a few roots.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {0ull, 42ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 10000; ++i)
      seeds.insert(stream_seed(root, i));
  }
  EXPECT_EQ(seeds.size(), 30000u);
}

TEST(StreamTest, StreamUniformsAreWellDistributed) {
  // First uniform of 20k consecutive streams: mean ~ 1/2, variance ~ 1/12
  // — a counter-based derivation that left structure between adjacent
  // indices would fail this.
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = make_stream(987, i).uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / n - mean * mean, 1.0 / 12.0, 0.005);
}

}  // namespace
}  // namespace mtdgrid::stats
