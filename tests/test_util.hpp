#pragma once

// Shared helpers for the mtdgrid test suite: deterministic random matrices
// and vectors built on the library RNG so every test is reproducible.

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::test {

inline linalg::Vector random_vector(std::size_t n, stats::Rng& rng,
                                    double scale = 1.0) {
  linalg::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = scale * rng.gaussian();
  return v;
}

inline linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                                    stats::Rng& rng, double scale = 1.0) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = scale * rng.gaussian();
  return m;
}

/// Random symmetric positive-definite matrix A = B^T B + eps I.
inline linalg::Matrix random_spd_matrix(std::size_t n, stats::Rng& rng) {
  const linalg::Matrix b = random_matrix(n + 2, n, rng);
  linalg::Matrix a = b.transpose_times(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  return a;
}

}  // namespace mtdgrid::test
