#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs and guard them against a baseline.

Subcommands:

  merge  OUT IN1 [IN2 ...] [--only REGEX] [--preserve FILE]
      Combine the "benchmarks" arrays of several --benchmark_format=json
      outputs into one file (optionally keeping only names matching REGEX).
      Context from the first input is preserved.
      With --preserve, rows from FILE (typically the previous baseline,
      which may be OUT itself — it is read before OUT is written) whose
      names are absent from the merged inputs are carried over unchanged.
      This makes partial regeneration safe: benchmarks you did not re-run
      stay guarded instead of silently dropping out of the baseline.

  check  --baseline FILE --current FILE [--max-regression 0.20]
         [--normalize-by NAME] [--min-speedup SLOW:FAST:RATIO ...]
      Fails (exit 1) when any benchmark present in the baseline is missing
      from the current run, or is slower than baseline * (1 + max-regression).
      Benchmarks present in the run but not in the baseline are reported as
      "new (informational)" and never fail the check.
      With --normalize-by, every time is divided by the named benchmark's
      time from the same file first — this compares machine-independent
      ratios, which is what CI uses (absolute wall times differ across
      runners; the fast-path-vs-reference ratio does not).
      Each --min-speedup SLOW:FAST:RATIO additionally asserts that in the
      *current* run, time(SLOW) / time(FAST) >= RATIO. An optional @CORES
      suffix (SLOW:FAST:RATIO@CORES) skips the assertion when the current
      run's machine reported fewer than CORES cpus in its benchmark
      context — used for thread-scaling gates, which a 1-core dev VM can
      never satisfy.

Refresh the baseline by rebuilding Release benches and re-running merge
(see README "Performance" section).
"""

import argparse
import json
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") == "aggregate":
            continue
        out[b["name"]] = b["real_time"] * _UNIT_NS[b.get("time_unit", "ns")]
    return data, out


def cmd_merge(args):
    # Read the preserve file FIRST: it is usually the baseline being
    # overwritten (OUT), so it must be loaded before OUT is rewritten.
    preserved_pool = []
    if args.preserve:
        data, _ = load_benchmarks(args.preserve)
        preserved_pool = data.get("benchmarks", [])

    merged = None
    benchmarks = []
    seen = set()
    pattern = re.compile(args.only) if args.only else None
    for path in args.inputs:
        data, _ = load_benchmarks(path)
        if merged is None:
            merged = {"context": data.get("context", {}), "benchmarks": []}
        for b in data.get("benchmarks", []):
            if pattern and not pattern.search(b["name"]):
                continue
            if b["name"] in seen:
                continue
            seen.add(b["name"])
            benchmarks.append(b)
    if merged is None:
        print("merge: no inputs", file=sys.stderr)
        return 1
    preserved = [b for b in preserved_pool if b["name"] not in seen]
    for b in preserved:
        print(f"merge: preserved '{b['name']}' from {args.preserve} "
              "(not in the merged inputs)")
    merged["benchmarks"] = benchmarks + preserved
    with open(args.out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"merge: wrote {len(benchmarks)} merged + {len(preserved)} "
          f"preserved benchmarks to {args.out}")
    return 0


def _normalized(times, reference_name, path):
    if reference_name is None:
        return dict(times)
    if reference_name not in times:
        print(f"check: normalizer '{reference_name}' missing from {path}",
              file=sys.stderr)
        return None
    ref = times[reference_name]
    return {name: t / ref for name, t in times.items()}


def cmd_check(args):
    _, base_times = load_benchmarks(args.baseline)
    cur_data, cur_times = load_benchmarks(args.current)
    cur_cpus = cur_data.get("context", {}).get("num_cpus", 0)
    failures = []

    base_n = _normalized(base_times, args.normalize_by, args.baseline)
    cur_n = _normalized(cur_times, args.normalize_by, args.current)
    if base_n is None or cur_n is None:
        return 1

    unit = "x-of-" + args.normalize_by if args.normalize_by else "ns"
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12}  verdict")
    for name in sorted(base_n):
        if args.normalize_by and name == args.normalize_by:
            continue
        if name not in cur_n:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<44} {base_n[name]:>12.4g} {'MISSING':>12}  FAIL")
            continue
        limit = base_n[name] * (1.0 + args.max_regression)
        verdict = "ok" if cur_n[name] <= limit else "FAIL"
        if verdict == "FAIL":
            failures.append(
                f"{name}: {cur_n[name]:.4g} {unit} vs baseline "
                f"{base_n[name]:.4g} {unit} "
                f"(>{100 * args.max_regression:.0f}% regression)")
        print(f"{name:<44} {base_n[name]:>12.4g} {cur_n[name]:>12.4g}  "
              f"{verdict}")

    # Benchmarks present in the run but absent from the baseline are new —
    # report them informationally instead of erroring, so adding a
    # benchmark doesn't require touching the baseline in the same commit.
    for name in sorted(cur_n):
        if name in base_n:
            continue
        if args.normalize_by and name == args.normalize_by:
            continue
        print(f"{name:<44} {'--':>12} {cur_n[name]:>12.4g}  new "
              f"(informational)")

    for spec in args.min_speedup or []:
        try:
            slow, fast, ratio_s = spec.rsplit(":", 2)
            min_cores = 0
            if "@" in ratio_s:
                ratio_s, cores_s = ratio_s.split("@", 1)
                min_cores = int(cores_s)
            ratio = float(ratio_s)
        except ValueError:
            failures.append(f"bad --min-speedup spec '{spec}'")
            continue
        if min_cores and cur_cpus < min_cores:
            print(f"speedup {slow} / {fast}: skipped "
                  f"(machine has {cur_cpus} cpus < {min_cores})")
            continue
        if slow not in cur_times or fast not in cur_times:
            failures.append(f"--min-speedup {spec}: benchmark missing")
            continue
        achieved = cur_times[slow] / cur_times[fast]
        verdict = "ok" if achieved >= ratio else "FAIL"
        if verdict == "FAIL":
            failures.append(
                f"speedup {slow} / {fast} = {achieved:.2f}x < {ratio:.2f}x")
        print(f"speedup {slow} / {fast}: {achieved:.2f}x "
              f"(required {ratio:.2f}x)  {verdict}")

    if failures:
        print("\nPerformance check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nPerformance check passed.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge")
    p_merge.add_argument("out")
    p_merge.add_argument("inputs", nargs="+")
    p_merge.add_argument("--only", help="keep only names matching this regex")
    p_merge.add_argument("--preserve", metavar="FILE",
                         help="carry over rows from FILE (read before OUT "
                              "is written) that the inputs did not re-run")
    p_merge.set_defaults(func=cmd_merge)

    p_check = sub.add_parser("check")
    p_check.add_argument("--baseline", required=True)
    p_check.add_argument("--current", required=True)
    p_check.add_argument("--max-regression", type=float, default=0.20)
    p_check.add_argument("--normalize-by", default=None)
    p_check.add_argument("--min-speedup", action="append",
                         metavar="SLOW:FAST:RATIO")
    p_check.set_defaults(func=cmd_check)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
