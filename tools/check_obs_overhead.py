#!/usr/bin/env python3
"""Gate the observability layer's hot-path cost.

Compares BM_DaemonDetectThroughput between --benchmark_format=json runs
of bench_serve from two trees: the normal build (counters + span checks
compiled in) and one configured with -DMTDGRID_OBS_NOOP=ON (obs::add and
obs::Span compiled out). Fails (exit 1) when the instrumented build is
more than --max-overhead slower than the no-op build.

Measuring a ~1% code difference between two binaries needs care. Two
noise sources each dwarf the signal, with a defense for each (both
assumed by the CI invocation):

  * Code-layout luck: recompiling with one unrelated function added or
    removed moves this microbenchmark by ~5%, so instrumented-vs-noop
    differences are meaningless unless both trees are built with forced
    alignment (`-falign-functions=64 -falign-loops=32`), which removes
    the layout lottery.
  * Runner phase noise: shared machines show bimodal per-process phases
    (CPU frequency, co-tenant pressure, placement) that move whole runs
    by 15%+. Defense: gate on CPU time (immune to preemption and steal),
    and give each side SEVERAL json files from alternated invocations
    (A B A B ...) — the check pools every repetition of every file per
    side and gates on the MINIMUM per-iteration cpu_time. The minimum of
    many alternated processes converges to the fast-phase floor of each
    binary, which is reproducible where means and medians are not; and
    alternation guarantees both binaries sample the same phase mix.

(An in-run reference-benchmark normalization — the perf gate's trick —
was tried and rejected here: phases shift within a process run, so the
detect/reference ratio itself is phase-dependent noise.)

Usage:
  check_obs_overhead.py --instrumented FILE [--instrumented FILE ...]
                        --noop FILE [--noop FILE ...]
                        [--benchmark NAME] [--max-overhead 0.02]
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def cpu_times(path, benchmark):
    """Per-iteration cpu_time (ns) of the benchmark's repetitions in PATH."""
    with open(path) as fh:
        data = json.load(fh)
    times = []
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") == "aggregate":
            continue
        name = b["name"]
        # With repetitions, names look like "BM_X/repeats:5"; match on
        # the benchmark's own name component.
        if name == benchmark or name.split("/repeats:")[0] == benchmark:
            times.append(b["cpu_time"] * _UNIT_NS[b.get("time_unit", "ns")])
    if not times:
        print(f"check_obs_overhead: '{benchmark}' not found in {path}",
              file=sys.stderr)
        return None
    return times


def pooled_min(paths, benchmark, label):
    per_file = []
    for path in paths:
        times = cpu_times(path, benchmark)
        if times is None:
            return None
        per_file.append(min(times))
    floor = min(per_file)
    shown = ", ".join(f"{t / 1e3:.2f}" for t in sorted(per_file))
    print(f"{label}: per-process minima (us): {shown}; floor "
          f"{floor / 1e3:.2f} us over {len(paths)} process(es)")
    return floor


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instrumented", required=True, action="append",
                        help="bench JSON from the normal build (repeat for "
                             "each alternated invocation)")
    parser.add_argument("--noop", required=True, action="append",
                        help="bench JSON from the -DMTDGRID_OBS_NOOP=ON "
                             "build (repeatable)")
    parser.add_argument("--benchmark",
                        default="BM_DaemonDetectThroughput",
                        help="benchmark name to compare")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="maximum allowed slowdown ratio (0.02 = 2%%)")
    args = parser.parse_args()

    inst = pooled_min(args.instrumented, args.benchmark, "instrumented")
    noop = pooled_min(args.noop, args.benchmark, "no-op")
    if inst is None or noop is None:
        return 1
    if noop <= 0:
        print("check_obs_overhead: non-positive no-op time", file=sys.stderr)
        return 1

    overhead = inst / noop - 1.0
    print(f"{args.benchmark}: instrumented floor {inst / 1e3:.2f} us vs "
          f"no-op floor {noop / 1e3:.2f} us: overhead {100 * overhead:+.2f}% "
          f"(limit +{100 * args.max_overhead:.2f}%)")
    if overhead > args.max_overhead:
        print("Observability overhead check FAILED: counters/spans cost "
              f"{100 * overhead:.2f}% on the serving hot path",
              file=sys.stderr)
        return 1
    print("Observability overhead check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
