#!/usr/bin/env python3
"""Validate the daemon's Prometheus text exposition from a client transcript.

Reads mtd_daemon --client reply lines on stdin, finds the first reply
carrying a "prometheus" field (the `{"op":"metrics","format":"prometheus"}`
reply), and checks the embedded exposition text:

  * every line is a comment (# HELP / # TYPE) or a `name[{labels}] value`
    sample with a valid metric name and a parseable value;
  * every sample's metric family has a preceding # TYPE line;
  * the required serving series are present: request counters, every
    mtdgrid_work_* engine counter, the current-hour gauge, and the
    request-latency histogram;
  * histogram bucket counts are cumulative (monotone in le order) and the
    +Inf bucket equals the _count series.

Exit 0 when the exposition is well-formed, 1 otherwise. Used by the CI
observability smoke step.
"""

import json
import re
import sys

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
_COMMENT_RE = re.compile(
    r"^# (?P<kind>HELP|TYPE) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) .+$")

REQUIRED_SERIES = [
    "mtdgrid_requests_total",
    "mtdgrid_errors_total",
    "mtdgrid_ticks_total",
    "mtdgrid_verb_requests_total",
    "mtdgrid_current_hour",
    "mtdgrid_request_latency_seconds_bucket",
    "mtdgrid_request_latency_seconds_sum",
    "mtdgrid_request_latency_seconds_count",
]


def find_exposition(stream):
    for line in stream:
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict) and "prometheus" in doc:
            return doc["prometheus"]
    return None


def family_of(sample_name):
    """The metric family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def check(text):
    errors = []
    typed = set()
    samples = []  # (name, labels_text, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"line {lineno}: empty line inside exposition")
            continue
        comment = _COMMENT_RE.match(line)
        if comment:
            if comment.group("kind") == "TYPE":
                typed.add(comment.group("name"))
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        sample = _SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        try:
            value = parse_value(sample.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad value: {line!r}")
            continue
        samples.append((sample.group("name"), sample.group("labels") or "",
                        value))

    names = {name for name, _, _ in samples}
    for name, _, _ in samples:
        if family_of(name) not in typed:
            errors.append(f"sample '{name}' has no # TYPE header")
    for required in REQUIRED_SERIES:
        if required not in names:
            errors.append(f"required series '{required}' missing")

    # Every engine work counter must be exported (the daemon renders the
    # full obs table, structural pool counters included).
    work = sorted(n for n in names
                  if n.startswith("mtdgrid_work_") and n.endswith("_total"))
    if not work:
        errors.append("no mtdgrid_work_*_total engine counters found")
    else:
        print(f"check_prometheus: {len(work)} engine work counters: "
              + ", ".join(w[len("mtdgrid_work_"):-len("_total")]
                          for w in work))

    # Histogram shape: cumulative buckets, +Inf == _count.
    buckets = []
    for name, labels, value in samples:
        if name != "mtdgrid_request_latency_seconds_bucket":
            continue
        le = re.search(r'le="([^"]+)"', labels)
        if not le:
            errors.append(f"bucket sample without le label: {labels!r}")
            continue
        buckets.append((parse_value(le.group(1)), value))
    if buckets:
        ordered = sorted(buckets)
        if [b for _, b in ordered] != sorted(b for _, b in ordered):
            errors.append(f"bucket counts not cumulative: {ordered}")
        if ordered[-1][0] != float("inf"):
            errors.append("last histogram bucket is not +Inf")
        count = next((v for n, _, v in samples
                      if n == "mtdgrid_request_latency_seconds_count"), None)
        if count is not None and ordered[-1][1] != count:
            errors.append(
                f"+Inf bucket {ordered[-1][1]} != _count {count}")

    return errors


def main():
    text = find_exposition(sys.stdin)
    if text is None:
        print("check_prometheus: no reply with a \"prometheus\" field on "
              "stdin", file=sys.stderr)
        return 1
    errors = check(text)
    if errors:
        print("Prometheus exposition check FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("Prometheus exposition check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
