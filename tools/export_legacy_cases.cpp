// Regenerates data/case14.m and data/case57.m from the frozen hand-coded
// tables in src/grid/cases.cpp. The loader round-trip tests assert that
// loading these files reproduces the legacy tables to machine precision,
// so after any (deliberate) change to the legacy factories re-run:
//
//   ./build/export_legacy_cases data
//
// and commit the refreshed files.

#include <cstdio>
#include <fstream>
#include <string>

#include "grid/cases.hpp"
#include "io/matpower.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  const struct {
    const char* file;
    mtdgrid::grid::PowerSystem (*factory)();
  } kCases[] = {
      {"case14.m", &mtdgrid::grid::make_case_ieee14},
      {"case57.m", &mtdgrid::grid::make_case57_legacy},
  };
  for (const auto& c : kCases) {
    const std::string path = dir + "/" + c.file;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << mtdgrid::io::write_matpower(c.factory());
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
