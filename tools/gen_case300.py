#!/usr/bin/env python3
"""Deterministically generates synthetic multi-region cases (case300 et al).

The bundled case300 is a *synthetic* 300-bus scenario with IEEE-300-like
aggregate statistics (300 buses, 411 branches, 69 generators, 23525.85 MW
of load): the verified IEEE 300-bus tables are not redistributable from
this offline build environment, and the scale tests only need a connected,
OPF-feasible network of that size. The file header repeats this provenance
note. If you have MATPOWER's case300.m at hand, dropping it into data/
(after moving the type-3 bus first and adding an mpc.dfacts matrix) is a
drop-in upgrade — the loader handles the full caseformat.

Topology: --regions regions, each a --core-bus meshed transmission core
(ring + chords) serving --leaves load buses on looped radial spurs;
inter-region ties between corresponding core buses. Loads are log-normally
sized and scaled to the exact --load total; --gens-per-region merit-order
generators per region sit mostly on core buses. Every parameter defaults
to the bundled case300 values, and the default invocation reproduces
data/case300.m byte for byte (the same `random.Random(seed)` draw order
regardless of which flags are set — the parameterization only moves the
constants).

This is the *structured* generator (regions grown from scratch); the
C++ `case_compose` tool / `grid::compose_cases` is the *tiling*
composer (N jittered copies of an existing case). Both exist because
the paper's scale story needs networks that are big AND realistic:
compose for "many interconnected control areas", this script for "one
big area with transmission/distribution structure".

Usage:
  tools/gen_case300.py > data/case300.m                 # RATE_A = 0 draft
  ./build/case_audit --suggest-limits data/case300.m > limits.txt
  tools/gen_case300.py --limits limits.txt > data/case300.m   # final

  tools/gen_case300.py --regions 5 --seed 500500 > case500.m  # variants

The two-step flow mirrors how case118's RATE_A was sized: limits are
1.25x the worst D-FACTS-envelope flow (case_audit), with a further 1.2x
cushion and nice rounding applied here.
"""

import argparse
import math
import random
import sys

BASE_MVA = 100.0


def nice(mw):
    step = 10.0 if mw < 100 else (50.0 if mw < 1000 else 100.0)
    return step * math.ceil(mw / step)


def parse_args(argv):
    p = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--regions", type=int, default=3,
                   help="number of regions (default 3)")
    p.add_argument("--core", type=int, default=20,
                   help="meshed transmission buses per region (default 20)")
    p.add_argument("--leaves", type=int, default=80,
                   help="load buses per region (default 80)")
    p.add_argument("--chords", type=int, default=10,
                   help="extra core-core lines per region (default 10)")
    p.add_argument("--loops", type=int, default=25,
                   help="loop-closing leaf lines per region (default 25)")
    p.add_argument("--ties", type=int, default=6,
                   help="inter-region lines (default 6)")
    p.add_argument("--load", type=float, default=23525.85,
                   help="total system load in MW (default 23525.85)")
    p.add_argument("--gens-per-region", type=int, default=23,
                   help="generators per region (default 23)")
    p.add_argument("--seed", type=int, default=300300,
                   help="random.Random seed (default 300300)")
    p.add_argument("--name", default=None,
                   help="mpc function name (default case<num_buses>)")
    p.add_argument("--limits", default=None, metavar="FILE",
                   help="per-branch RATE_A suggestions from case_audit")
    args = p.parse_args(argv)
    if args.regions < 2 or args.core < 8 or args.leaves < 1:
        p.error("need --regions >= 2, --core >= 8, --leaves >= 1")
    if args.ties > 2 * args.regions:
        p.error("at most 2 ties per region pair are generated")
    if args.gens_per_region < 4 or args.gens_per_region - 3 > args.core:
        p.error("--gens-per-region must be in [4, core + 3]")
    return args


def main(argv=None):
    a = parse_args(argv)
    bpr = a.core + a.leaves          # buses per region
    nbus = a.regions * bpr
    name = a.name or "case%d" % nbus
    rng = random.Random(a.seed)

    # --- buses -----------------------------------------------------------
    # Region r occupies buses r*bpr+1 .. r*bpr+bpr (1-based); the first
    # `core` of each block are transmission buses, the rest are leaves.
    loads = [0.0] * (nbus + 1)  # 1-based
    raw = {}
    for r in range(a.regions):
        base = r * bpr
        for i in range(a.core + 1, bpr + 1):
            raw[base + i] = math.exp(rng.gauss(3.3, 0.8))
    scale = a.load / sum(raw.values())
    for b, v in raw.items():
        loads[b] = round(v * scale, 2)
    # Fix rounding drift on one bus so the total is exact.
    drift = round(a.load - sum(loads), 2)
    loads[bpr] = round(loads[bpr] + drift, 2)

    # --- branches --------------------------------------------------------
    branches = []  # (from, to, x)

    def add(f, t, x):
        branches.append((f, t, round(x, 5)))

    for r in range(a.regions):
        base = r * bpr
        core = [base + i for i in range(1, a.core + 1)]
        # Ring.
        for i in range(a.core):
            add(core[i], core[(i + 1) % a.core], rng.uniform(0.010, 0.040))
        # Chords across the ring.
        for _ in range(a.chords):
            i = rng.randrange(a.core)
            j = (i + rng.randrange(3, a.core - 3)) % a.core
            add(core[min(i, j)], core[max(i, j)],
                rng.uniform(0.015, 0.060))
        # Leaves: each hangs off a core bus or an already-attached leaf.
        attached = []
        for i in range(a.core + 1, bpr + 1):
            leaf = base + i
            if attached and rng.random() < 0.35:
                parent = rng.choice(attached)
            else:
                parent = rng.choice(core)
            add(parent, leaf, rng.uniform(0.05, 0.35))
            attached.append(leaf)
        # Loop closers among leaves.
        for _ in range(a.loops):
            x, y = rng.sample(attached, 2)
            add(min(x, y), max(x, y), rng.uniform(0.08, 0.40))

    # Inter-region ties between corresponding core buses of consecutive
    # regions (heavy corridors): two corridors per region pair, anchored
    # at core bus 1 and the ring's opposite side.
    opposite = 1 + a.core // 2
    tie_pairs = [(r * bpr + o, ((r + 1) % a.regions) * bpr + o)
                 for r in range(a.regions) for o in (1, opposite)]
    for f, t in tie_pairs[:a.ties]:
        add(f, t, rng.uniform(0.008, 0.020))

    per_region = a.core + a.chords + a.leaves + a.loops
    assert len(branches) == a.regions * per_region + a.ties, len(branches)

    # --- generators ------------------------------------------------------
    # Units per region on distinct core buses (plus 3 leaves); capacities
    # cover the regional load with 1.4x headroom, merit-order costs.
    gens = []  # (bus, pmax, cost)
    for r in range(a.regions):
        base = r * bpr
        region_load = sum(loads[base + i] for i in range(1, bpr + 1))
        weights = [rng.uniform(0.3, 3.0) for _ in range(a.gens_per_region)]
        wsum = sum(weights)
        buses = rng.sample([base + i for i in range(1, a.core + 1)],
                           a.gens_per_region - 3)
        buses += rng.sample([base + i for i in range(a.core + 1, bpr + 1)], 3)
        for g in range(a.gens_per_region):
            pmax = round(1.4 * region_load * weights[g] / wsum, 1)
            cost = round(rng.uniform(18.0, 45.0), 1)
            gens.append((buses[g], max(pmax, 20.0), cost))
    assert len(gens) == a.regions * a.gens_per_region

    # --- D-FACTS ---------------------------------------------------------
    # Ring openers in each core plus the ties, eta = 0.5.
    dfacts = []
    ring_offsets = [o for o in (1, 5, 11) if o <= a.core]
    for r in range(a.regions):
        ring_start = r * per_region
        dfacts += [ring_start + o for o in ring_offsets]
    ties_start = a.regions * per_region
    dfacts += [ties_start + i for i in range(1, a.ties + 1)]

    # --- limits ----------------------------------------------------------
    rate_a = [0.0] * len(branches)
    if a.limits:
        for lineno, line in enumerate(open(a.limits), 1):
            if line.startswith("%") or not line.strip():
                continue
            try:
                idx_s, lim_s = line.split()
                idx, lim = int(idx_s), float(lim_s)
            except ValueError:
                sys.exit(f"{a.limits}:{lineno}: expected "
                         f"'<branch> <limit>', got {line!r}")
            if not 1 <= idx <= len(branches):
                sys.exit(f"{a.limits}:{lineno}: branch index {idx} "
                         f"out of range 1..{len(branches)}")
            rate_a[idx - 1] = nice(lim * 1.2)

    # --- emit ------------------------------------------------------------
    out = sys.stdout
    out.write("function mpc = %s\n" % name)
    out.write(
        "%% %d-bus large-scale scenario for the mtdgrid DC MTD pipeline.\n"
        "%%\n"
        "%% PROVENANCE: this is a SYNTHETIC network with IEEE-300-like\n"
        "%% aggregate statistics (%d buses, %d branches, %d generators,\n"
        "%% %.2f MW load), generated deterministically by\n"
        "%% tools/gen_case300.py (seed %d) because the verified IEEE\n"
        "%% 300-bus tables are not redistributable from this build\n"
        "%% environment. Swap in MATPOWER's case300.m for the real\n"
        "%% topology; the loader accepts the full caseformat.\n"
        "%%\n"
        "%% Structure: %d regions x (%d-bus meshed core + %d leaf buses on\n"
        "%% looped spurs), %d inter-region ties, %d D-FACTS devices.\n"
        "%% RATE_A sized via case_audit --suggest-limits (see the script\n"
        "%% header for the exact two-step flow).\n"
        % (nbus, nbus, len(branches), len(gens), a.load, a.seed,
           a.regions, a.core, a.leaves, a.ties, len(dfacts)))
    out.write("mpc.version = '2';\n\n")
    out.write("mpc.baseMVA = %g;\n\n" % BASE_MVA)

    out.write("%% bus data: bus_i type Pd Qd Gs Bs area Vm Va baseKV "
              "zone Vmax Vmin\n")
    out.write("mpc.bus = [\n")
    gen_buses = {g[0] for g in gens}
    for b in range(1, nbus + 1):
        btype = 3 if b == 1 else (2 if b in gen_buses else 1)
        out.write("\t%d\t%d\t%g\t0\t0\t0\t1\t1\t0\t0\t1\t1.06\t0.94;\n"
                  % (b, btype, loads[b]))
    out.write("];\n\n")

    out.write("%% generator data: bus Pg Qg Qmax Qmin Vg mBase status "
              "Pmax Pmin\n")
    out.write("mpc.gen = [\n")
    for bus, pmax, _ in gens:
        out.write("\t%d\t0\t0\t0\t0\t1\t%g\t1\t%g\t0;\n"
                  % (bus, BASE_MVA, pmax))
    out.write("];\n\n")

    out.write("%% generator cost data: model startup shutdown n c1 c0\n")
    out.write("mpc.gencost = [\n")
    for _, _, cost in gens:
        out.write("\t2\t0\t0\t2\t%g\t0;\n" % cost)
    out.write("];\n\n")

    out.write("%% branch data: fbus tbus r x b rateA rateB rateC ratio "
              "angle status\n")
    out.write("mpc.branch = [\n")
    for (f, t, x), ra in zip(branches, rate_a):
        out.write("\t%d\t%d\t0\t%g\t0\t%g\t0\t0\t0\t0\t1;\n"
                  % (f, t, x, ra))
    out.write("];\n\n")

    out.write("%% mtdgrid extension: D-FACTS devices, [branch_row "
              "eta_max]\n")
    out.write("mpc.dfacts = [\n")
    for idx in dfacts:
        out.write("\t%d\t0.5;\n" % idx)
    out.write("];\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
