#!/usr/bin/env python3
"""Deterministically generates data/case300.m.

The bundled case300 is a *synthetic* 300-bus scenario with IEEE-300-like
aggregate statistics (300 buses, 411 branches, 69 generators, 23525.85 MW
of load): the verified IEEE 300-bus tables are not redistributable from
this offline build environment, and the scale tests only need a connected,
OPF-feasible network of that size. The file header repeats this provenance
note. If you have MATPOWER's case300.m at hand, dropping it into data/
(after moving the type-3 bus first and adding an mpc.dfacts matrix) is a
drop-in upgrade — the loader handles the full caseformat.

Topology: three 100-bus regions, each a 20-bus meshed transmission core
(ring + chords) serving 80 load buses on looped radial spurs; six
inter-region ties. Loads are log-normally sized and scaled to the exact
total; 23 merit-order generators per region sit on core buses.

Usage:
  tools/gen_case300.py > data/case300.m                 # RATE_A = 0 draft
  ./build/case_audit --suggest-limits data/case300.m > limits.txt
  tools/gen_case300.py --limits limits.txt > data/case300.m   # final

The two-step flow mirrors how case118's RATE_A was sized: limits are
1.25x the worst D-FACTS-envelope flow (case_audit), with a further 1.2x
cushion and nice rounding applied here.
"""

import math
import random
import sys

NUM_REGIONS = 3
CORE = 20          # meshed transmission buses per region
LEAVES = 80        # load buses per region
CHORDS = 10        # extra core-core lines per region
LOOPS = 25         # loop-closing lines among leaves per region
TIES = 6           # inter-region lines
TOTAL_LOAD_MW = 23525.85
GENS_PER_REGION = 23
BASE_MVA = 100.0


def nice(mw):
    step = 10.0 if mw < 100 else (50.0 if mw < 1000 else 100.0)
    return step * math.ceil(mw / step)


def main():
    limits_path = None
    args = sys.argv[1:]
    if args[:1] == ["--limits"]:
        if len(args) < 2:
            print("--limits needs a file argument\n", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        limits_path = args[1]
        args = args[2:]
    if args:
        print(__doc__, file=sys.stderr)
        return 2

    rng = random.Random(300300)

    # --- buses -----------------------------------------------------------
    # Region r occupies buses r*100+1 .. r*100+100 (1-based); the first
    # CORE of each block are transmission buses, the rest are leaves.
    loads = [0.0] * 301  # 1-based
    raw = {}
    for r in range(NUM_REGIONS):
        base = r * 100
        for i in range(CORE + 1, 101):
            raw[base + i] = math.exp(rng.gauss(3.3, 0.8))
    scale = TOTAL_LOAD_MW / sum(raw.values())
    for b, v in raw.items():
        loads[b] = round(v * scale, 2)
    # Fix rounding drift on one bus so the total is exact.
    drift = round(TOTAL_LOAD_MW - sum(loads), 2)
    loads[100] = round(loads[100] + drift, 2)

    # --- branches --------------------------------------------------------
    branches = []  # (from, to, x)

    def add(f, t, x):
        branches.append((f, t, round(x, 5)))

    for r in range(NUM_REGIONS):
        base = r * 100
        core = [base + i for i in range(1, CORE + 1)]
        # Ring.
        for i in range(CORE):
            add(core[i], core[(i + 1) % CORE], rng.uniform(0.010, 0.040))
        # Chords across the ring.
        for _ in range(CHORDS):
            i = rng.randrange(CORE)
            j = (i + rng.randrange(3, CORE - 3)) % CORE
            add(core[min(i, j)], core[max(i, j)],
                rng.uniform(0.015, 0.060))
        # Leaves: each hangs off a core bus or an already-attached leaf.
        attached = []
        for i in range(CORE + 1, 101):
            leaf = base + i
            if attached and rng.random() < 0.35:
                parent = rng.choice(attached)
            else:
                parent = rng.choice(core)
            add(parent, leaf, rng.uniform(0.05, 0.35))
            attached.append(leaf)
        # Loop closers among leaves.
        for _ in range(LOOPS):
            a, b = rng.sample(attached, 2)
            add(min(a, b), max(a, b), rng.uniform(0.08, 0.40))

    # Inter-region ties between core buses (heavy corridors).
    tie_pairs = [(1, 101), (11, 111), (101, 201), (111, 211), (201, 1),
                 (211, 11)]
    for f, t in tie_pairs[:TIES]:
        add(f, t, rng.uniform(0.008, 0.020))

    assert len(branches) == NUM_REGIONS * (CORE + CHORDS + LEAVES + LOOPS) \
        + TIES == 411, len(branches)

    # --- generators ------------------------------------------------------
    # 23 units per region on distinct core buses; capacities cover the
    # regional load with 1.4x headroom, merit-order linear costs.
    gens = []  # (bus, pmax, cost)
    for r in range(NUM_REGIONS):
        base = r * 100
        region_load = sum(loads[base + i] for i in range(1, 101))
        weights = [rng.uniform(0.3, 3.0) for _ in range(GENS_PER_REGION)]
        wsum = sum(weights)
        buses = rng.sample([base + i for i in range(1, CORE + 1)],
                           GENS_PER_REGION - 3)
        buses += rng.sample([base + i for i in range(CORE + 1, 101)], 3)
        for g in range(GENS_PER_REGION):
            pmax = round(1.4 * region_load * weights[g] / wsum, 1)
            cost = round(rng.uniform(18.0, 45.0), 1)
            gens.append((buses[g], max(pmax, 20.0), cost))
    assert len(gens) == 69

    # --- D-FACTS ---------------------------------------------------------
    # Ring openers in each core plus the ties: 15 devices, eta = 0.5.
    dfacts = []
    for r in range(NUM_REGIONS):
        ring_start = r * (CORE + CHORDS + LEAVES + LOOPS)
        dfacts += [ring_start + 1, ring_start + 5, ring_start + 11]
    ties_start = NUM_REGIONS * (CORE + CHORDS + LEAVES + LOOPS)
    dfacts += [ties_start + i for i in range(1, TIES + 1)]

    # --- limits ----------------------------------------------------------
    rate_a = [0.0] * len(branches)
    if limits_path:
        for lineno, line in enumerate(open(limits_path), 1):
            if line.startswith("%") or not line.strip():
                continue
            try:
                idx_s, lim_s = line.split()
                idx, lim = int(idx_s), float(lim_s)
            except ValueError:
                sys.exit(f"{limits_path}:{lineno}: expected "
                         f"'<branch> <limit>', got {line!r}")
            if not 1 <= idx <= len(branches):
                sys.exit(f"{limits_path}:{lineno}: branch index {idx} "
                         f"out of range 1..{len(branches)}")
            rate_a[idx - 1] = nice(lim * 1.2)

    # --- emit ------------------------------------------------------------
    out = sys.stdout
    out.write("function mpc = case300\n")
    out.write(
        "% 300-bus large-scale scenario for the mtdgrid DC MTD pipeline.\n"
        "%\n"
        "% PROVENANCE: this is a SYNTHETIC network with IEEE-300-like\n"
        "% aggregate statistics (300 buses, 411 branches, 69 generators,\n"
        "% 23525.85 MW load), generated deterministically by\n"
        "% tools/gen_case300.py (seed 300300) because the verified IEEE\n"
        "% 300-bus tables are not redistributable from this build\n"
        "% environment. Swap in MATPOWER's case300.m for the real\n"
        "% topology; the loader accepts the full caseformat.\n"
        "%\n"
        "% Structure: 3 regions x (20-bus meshed core + 80 leaf buses on\n"
        "% looped spurs), 6 inter-region ties, 15 D-FACTS devices.\n"
        "% RATE_A sized via case_audit --suggest-limits (see the script\n"
        "% header for the exact two-step flow).\n")
    out.write("mpc.version = '2';\n\n")
    out.write("mpc.baseMVA = %g;\n\n" % BASE_MVA)

    out.write("%% bus data: bus_i type Pd Qd Gs Bs area Vm Va baseKV "
              "zone Vmax Vmin\n")
    out.write("mpc.bus = [\n")
    gen_buses = {g[0] for g in gens}
    for b in range(1, 301):
        btype = 3 if b == 1 else (2 if b in gen_buses else 1)
        out.write("\t%d\t%d\t%g\t0\t0\t0\t1\t1\t0\t0\t1\t1.06\t0.94;\n"
                  % (b, btype, loads[b]))
    out.write("];\n\n")

    out.write("%% generator data: bus Pg Qg Qmax Qmin Vg mBase status "
              "Pmax Pmin\n")
    out.write("mpc.gen = [\n")
    for bus, pmax, _ in gens:
        out.write("\t%d\t0\t0\t0\t0\t1\t%g\t1\t%g\t0;\n"
                  % (bus, BASE_MVA, pmax))
    out.write("];\n\n")

    out.write("%% generator cost data: model startup shutdown n c1 c0\n")
    out.write("mpc.gencost = [\n")
    for _, _, cost in gens:
        out.write("\t2\t0\t0\t2\t%g\t0;\n" % cost)
    out.write("];\n\n")

    out.write("%% branch data: fbus tbus r x b rateA rateB rateC ratio "
              "angle status\n")
    out.write("mpc.branch = [\n")
    for (f, t, x), ra in zip(branches, rate_a):
        out.write("\t%d\t%d\t0\t%g\t0\t%g\t0\t0\t0\t0\t1;\n"
                  % (f, t, x, ra))
    out.write("];\n\n")

    out.write("%% mtdgrid extension: D-FACTS devices, [branch_row "
              "eta_max]\n")
    out.write("mpc.dfacts = [\n")
    for idx in dfacts:
        out.write("\t%d\t0.5;\n" % idx)
    out.write("];\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
